"""Session write-ahead journal: crash durability for the serving layer.

The batch path survives ``kill -9`` through the durable-sweep manifest;
this module gives ``repro serve`` the same guarantee. Every tenant
session owns a :class:`SessionJournal` in the journal directory:

- ``<sid>.journal`` — an append-only JSONL log. The first record is an
  ``open`` record carrying the JSON session spec (the exact body
  ``POST /v1/sessions`` received) and the session's
  :meth:`~repro.serve.session.ControlSession.fingerprint`; every
  subsequent record is an ``advance`` written **before** the engine
  steps (write-ahead: the record is the intent, the engine step is the
  effect). Appends flush to the kernel per record, so a SIGKILL never
  loses an acknowledged advance; fsync is batched at compaction and
  shutdown (see :class:`~repro.utils.atomicio.DurableAppender`).
- ``<sid>.snapshot.json`` — the latest compaction point: the session's
  :meth:`~repro.runtime.checkpoint.SimulationState.to_wire_json` JSON
  envelope, written atomically. Compaction fires on the
  ``CheckpointConfig`` cadence (first advance of each
  ``every_minutes``-wide bucket), snapshots + fsyncs, then resets the
  journal to its ``open`` header so replay work stays bounded.

Recovery (:meth:`JournalSupervisor.recover`) rebuilds one session
**bit-identically**: restore the snapshot if one exists (else reopen
from the ``open`` record's spec, refusing on a fingerprint mismatch),
then re-execute every journaled advance at or past the restore point.
The engines are deterministic, so re-executing an advance whose engine
step may or may not have completed before the crash converges to the
same bytes either way — the golden tests drive recovered sessions to
the horizon and require equality with ``Simulation.run()`` on all three
engines, fault plans included. A crash mid-append leaves at most one
torn final line; it is discarded (the client never got that response)
and the post-recovery compaction truncates it away.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.runtime.checkpoint import SimulationState
from repro.utils.atomicio import (
    DurableAppender,
    atomic_write_text,
    canonical_json,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.session import ControlSession

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalError",
    "JournalSupervisor",
    "SessionJournal",
]

#: Journal record schema. v1: ``open`` records carry ``spec`` (JSON
#: session spec or null for snapshot-only sessions) + ``fingerprint``;
#: ``advance`` records carry ``minute`` + ``invocations`` ({fid: count}
#: or null for replay-from-trace).
JOURNAL_SCHEMA_VERSION = 1


class JournalError(Exception):
    """A journal that cannot be recovered (corrupt header, fingerprint
    mismatch, unreadable snapshot) — never raised for a torn tail."""


class SessionJournal:
    """Write-ahead journal + snapshot pair for one session.

    Not thread-safe by itself: callers hold the session's lock around
    :meth:`record_advance`/:meth:`compact`, which also serializes the
    journal (the serving layer already serializes advances per session).
    """

    def __init__(
        self,
        directory: str | Path,
        sid: str,
        *,
        every_minutes: int = 240,
    ) -> None:
        self.directory = Path(directory)
        self.sid = sid
        self.every_minutes = int(every_minutes)
        self.path = self.directory / f"{sid}.journal"
        self.snapshot_path = self.directory / f"{sid}.snapshot.json"
        self._header: str | None = None
        self._last_bucket = -1
        self._appender: DurableAppender | None = None

    # -- writing -------------------------------------------------------------

    def begin(
        self,
        spec: dict | None,
        fingerprint: str,
        *,
        next_minute: int = 0,
    ) -> None:
        """Start a fresh journal with its ``open`` header record.

        ``spec`` is the JSON session spec recovery can rebuild from, or
        ``None`` for sessions that only exist as snapshots (restored
        over HTTP) — those must :meth:`compact` immediately so a
        restore point exists before the first advance is acknowledged.
        ``next_minute`` anchors the compaction cadence to the session's
        current position, so the first bucket is full-width rather than
        compacting on the very first advance.
        """
        self._last_bucket = next_minute // self.every_minutes
        self._header = canonical_json(
            {
                "v": JOURNAL_SCHEMA_VERSION,
                "kind": "open",
                "sid": self.sid,
                "spec": spec,
                "fingerprint": fingerprint,
            }
        )
        self._reset_log()

    def record_advance(
        self, minute: int, invocations: dict[int, int] | None
    ) -> None:
        """Append one advance record — called *before* the engine steps."""
        if self._appender is None:
            raise ValueError(f"journal for {self.sid} is closed")
        self._appender.append_line(
            canonical_json(
                {
                    "v": JOURNAL_SCHEMA_VERSION,
                    "kind": "advance",
                    "minute": int(minute),
                    "invocations": (
                        {str(fid): int(n) for fid, n in invocations.items()}
                        if invocations is not None
                        else None
                    ),
                }
            )
        )

    def maybe_compact(self, session: "ControlSession") -> None:
        """Compact when the session enters a new cadence bucket —
        the same bucketing rule ``CheckpointConfig.every_minutes``
        uses, so compaction minutes are a pure function of the trace."""
        bucket = session.next_minute // self.every_minutes
        if bucket > self._last_bucket:
            self.compact(session)

    def compact(self, session: "ControlSession") -> None:
        """Snapshot the session and reset the journal to its header.

        Ordering is the crash-safety argument: the snapshot lands
        atomically (fsynced) *before* the journal is reset, so at every
        instant either the old journal or the new snapshot can rebuild
        the session — never neither.
        """
        atomic_write_text(
            self.snapshot_path, session.snapshot().to_wire_json() + "\n"
        )
        self._last_bucket = session.next_minute // self.every_minutes
        self._reset_log()

    def sync(self) -> None:
        """fsync the journal log (drain/shutdown boundary)."""
        if self._appender is not None:
            self._appender.sync()

    def close(self) -> None:
        """fsync and close (idempotent); the files stay for recovery."""
        if self._appender is not None:
            self._appender.close()
            self._appender = None

    def delete(self) -> None:
        """Remove the journal and snapshot — an explicit close of the
        session means there is nothing left to recover."""
        self.close()
        self.path.unlink(missing_ok=True)
        self.snapshot_path.unlink(missing_ok=True)

    def _reset_log(self) -> None:
        if self._header is None:
            raise ValueError(f"journal for {self.sid} has no open record")
        if self._appender is not None:
            self._appender.close(sync=False)
        # durable=False: the reset is only reached *after* the snapshot
        # is fsynced (compact()) or before any advance exists (begin()),
        # so a power cut that loses this rewrite leaves either the old
        # journal (whose stale records replay skips) or a torn/empty
        # file (zero records — the snapshot alone recovers). Skipping
        # the fsync halves compaction's fsync count, which dominates
        # the journal's advance-path overhead.
        atomic_write_text(self.path, self._header + "\n", durable=False)
        self._appender = DurableAppender(self.path)


def read_records(path: Path) -> list[dict[str, Any]]:
    """Parse a journal file, discarding a torn final line.

    A torn line anywhere *except* the tail is corruption and raises
    :class:`JournalError`; the tail is the expected SIGKILL artifact
    (the append never returned, so its advance was never acknowledged).
    """
    records: list[dict[str, Any]] = []
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            if i == len(lines) - 1:
                break  # torn tail: the unacknowledged in-flight append
            raise JournalError(
                f"{path}:{i + 1}: corrupt journal record: {exc}"
            ) from exc
        if not isinstance(obj, dict):
            raise JournalError(f"{path}:{i + 1}: record is not an object")
        records.append(obj)
    return records


class JournalSupervisor:
    """Owns one journal directory: creates per-session journals and
    rebuilds sessions from what a crashed process left behind.

    Thread-safety: journal *creation* can race across tenants, so the
    supervisor only touches per-``sid`` paths derived under a caller-
    provided id — the serving layer allocates ids under its registry
    lock, making every ``sid`` unique; after that each journal is
    confined to its session's lock.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every_minutes: int = 240,
    ) -> None:
        self.directory = Path(directory)
        self.every_minutes = int(every_minutes)
        self.directory.mkdir(parents=True, exist_ok=True)

    def create(
        self, sid: str, spec: dict | None, session: "ControlSession"
    ) -> SessionJournal:
        """Open a fresh journal for a newly registered session."""
        journal = SessionJournal(
            self.directory, sid, every_minutes=self.every_minutes
        )
        journal.begin(
            spec, session.fingerprint(), next_minute=session.next_minute
        )
        if spec is None:
            # Snapshot-only session (restored over HTTP): without a
            # spec, the snapshot IS the only restore point — write it
            # before the first advance can be acknowledged.
            journal.compact(session)
        return journal

    def discover(self) -> list[str]:
        """Session ids with recoverable state in the directory."""
        sids = {p.name[: -len(".journal")] for p in
                self.directory.glob("*.journal")}
        sids.update(
            p.name[: -len(".snapshot.json")]
            for p in self.directory.glob("*.snapshot.json")
        )
        return sorted(sids)

    def recover(
        self, sid: str
    ) -> tuple["ControlSession", SessionJournal]:
        """Rebuild one session bit-identically and hand back its
        (compacted) journal, ready for further advances."""
        from repro.serve.session import ControlSession

        journal_path = self.directory / f"{sid}.journal"
        snapshot_path = self.directory / f"{sid}.snapshot.json"
        records = (
            read_records(journal_path) if journal_path.exists() else []
        )
        header = records[0] if records else None
        if header is not None and header.get("kind") != "open":
            raise JournalError(
                f"{journal_path}: first record must be an 'open' header, "
                f"got kind={header.get('kind')!r}"
            )

        session: ControlSession | None = None
        if snapshot_path.exists():
            try:
                state = SimulationState.from_wire_json(
                    snapshot_path.read_text(encoding="utf-8")
                )
                session = ControlSession.restore(state)
            except ValueError as exc:
                raise JournalError(
                    f"{snapshot_path}: unreadable snapshot: {exc}"
                ) from exc
        if session is None:
            if header is None or header.get("spec") is None:
                raise JournalError(
                    f"session {sid!r}: no snapshot and no open-record "
                    "spec to rebuild from"
                )
            from repro.serve.app import open_session_from_spec

            session = open_session_from_spec(dict(header["spec"]))
            expected = header.get("fingerprint")
            actual = session.fingerprint()
            if expected is not None and expected != actual:
                raise JournalError(
                    f"session {sid!r}: rebuilt session fingerprint "
                    f"{actual[:12]} does not match the journaled "
                    f"{str(expected)[:12]} — the spec or its registries "
                    "drifted; replaying advances would diverge silently"
                )

        for record in records[1:]:
            if record.get("kind") != "advance":
                continue
            minute = int(record["minute"])
            if minute < session.next_minute:
                continue  # already inside the snapshot
            raw = record.get("invocations")
            invocations = (
                {int(fid): int(n) for fid, n in raw.items()}
                if raw is not None
                else None
            )
            try:
                session.advance(minute, invocations)
            except ValueError:
                # The original call failed the same validation and
                # never stepped the engine; skipping converges to the
                # pre-crash state.
                continue

        journal = SessionJournal(
            self.directory, sid, every_minutes=self.every_minutes
        )
        journal.begin(
            dict(header["spec"]) if header and header.get("spec") else None,
            session.fingerprint(),
            next_minute=session.next_minute,
        )
        # Compacting immediately truncates any torn tail, bounds the
        # next recovery's replay, and guarantees snapshot-only sessions
        # keep a restore point.
        journal.compact(session)
        return session, journal
