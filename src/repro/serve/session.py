"""Control-plane sessions: ``advance()`` a run one minute at a time.

The batch API (:meth:`repro.runtime.simulator.Simulation.run`,
:func:`repro.api.simulate`) executes a whole trace and hands back the
final :class:`~repro.runtime.metrics.RunResult`. A *session* exposes the
same engines incrementally: :func:`open_session` binds a policy to a
workload, and each :meth:`ControlSession.advance` call executes exactly
one simulated minute and returns that minute's control decisions —
variant plans, cold starts, downgrades, capacity-valve actions — as the
engine made them.

There is **one stepping code path**. Sessions drive the exact stepper
classes the batch drivers use (:class:`~repro.runtime.simulator.ReferenceStepper`,
:class:`~repro.runtime.fastpath.FastStepper`,
:class:`~repro.runtime.fleet.FleetStepper`), so a full-trace replay
through ``advance()`` is bit-identical to ``Simulation.run()`` on every
engine — pinned by the golden tests in ``tests/test_serve_session.py``.

Two workload modes share the API:

- **Replay** — open with a recorded :class:`~repro.traces.schema.Trace`;
  ``advance()`` feeds each minute's invocations from the trace.
- **Online** — open with a :class:`TraceMeta` (fleet size + horizon);
  the caller supplies each minute's invocations to ``advance()`` as they
  arrive. The oracle baseline and trace-perturbing fault plans are
  rejected here (both need the full future trace).

``snapshot()`` captures the session as a
:class:`~repro.runtime.checkpoint.SimulationState` (the engine
checkpoint format, ``engine="session:<name>"``) and
``ControlSession.restore()`` rebuilds it — in the same process or after
a restart — bit-identically, by the same one-pickle-payload rule the
engine checkpoints use.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, replace
from pathlib import Path
from time import perf_counter
from typing import Any

import numpy as np

from repro.faults.plan import FaultPlan
from repro.models.variants import ModelFamily
from repro.obs.session import ObservabilityConfig
from repro.runtime.checkpoint import SimulationState
from repro.runtime.metrics import RunResult
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.simulator import (
    ReferenceStepper,
    Simulation,
    SimulationConfig,
)
from repro.traces.schema import FunctionSpec, Trace
from repro.utils.specs import parse_engine
from repro.utils.validation import check_positive_int

__all__ = ["AdvanceResult", "ControlSession", "TraceMeta", "open_session"]


@dataclass(frozen=True)
class TraceMeta:
    """Shape of an *online* workload: fleet size and control horizon.

    Opening a session with a ``TraceMeta`` instead of a recorded
    :class:`~repro.traces.schema.Trace` puts it in online mode: the
    trace is all-idle and each minute's invocations are supplied to
    :meth:`ControlSession.advance` as they arrive.
    """

    n_functions: int
    horizon_minutes: int
    name: str = "online"

    def __post_init__(self) -> None:
        check_positive_int("n_functions", self.n_functions)
        check_positive_int("horizon_minutes", self.horizon_minutes)

    def to_trace(self) -> Trace:
        """An all-idle placeholder trace of this shape."""
        counts = np.zeros(
            (self.n_functions, self.horizon_minutes), dtype=np.int64
        )
        functions = tuple(
            FunctionSpec(fid, f"fn-{fid:05d}", archetype="online")
            for fid in range(self.n_functions)
        )
        return Trace(counts=counts, functions=functions, name=self.name)


@dataclass(frozen=True)
class AdvanceResult:
    """What one :meth:`ControlSession.advance` minute did.

    ``decisions`` are the engine's decision-trace records for the minute
    — the exact dicts the observability layer writes (``kind`` in
    ``plan``/``cold``/``downgrade``/``peak``/``spawn_fault``/
    ``policy_fault``; see :mod:`repro.obs.session`) — empty when the
    session runs without decision recording. ``memory_mb`` is the
    keep-alive memory committed for the minute.
    """

    minute: int
    n_invocations: int
    n_cold: int
    n_forced_downgrades: int
    memory_mb: float
    decisions: tuple[dict, ...]

    def as_dict(self) -> dict:
        """JSON-ready form (decision records are already plain dicts)."""
        return {
            "minute": self.minute,
            "n_invocations": self.n_invocations,
            "n_cold": self.n_cold,
            "n_forced_downgrades": self.n_forced_downgrades,
            "memory_mb": self.memory_mb,
            "decisions": list(self.decisions),
        }


class ControlSession:
    """One live run, driven minute-by-minute over a single stepper.

    Construct through :func:`open_session` (fresh) or
    :meth:`ControlSession.restore` (from a snapshot). The session owns a
    stepper for the selected engine and only ever feeds it minutes in
    order, which is the whole bit-identity argument: the per-minute
    semantics live in the stepper classes the batch drivers share.
    """

    def __init__(
        self,
        sim: Simulation,
        *,
        engine: str = "auto",
        shards: int = 1,
        online: bool = False,
        _restored: tuple | None = None,
    ) -> None:
        self.sim = sim
        self.trace = sim.trace
        self.horizon = sim.trace.horizon
        self.n_functions = sim.trace.n_functions
        self.shards = shards
        self.online = online
        self._wall = 0.0
        self._span_added = False
        # The three steppers share the stepping surface by convention,
        # not by base class — dispatch stays duck-typed.
        self.stepper: Any
        if _restored is None:
            live: dict | None = None
            next_minute = 0
            cursor: tuple = ()
        else:
            live, next_minute, cursor = _restored
        engine = parse_engine(engine)
        if engine == "fleet":
            from repro.runtime.fleet import FleetStepper, validate_fleet_config

            validate_fleet_config(sim.config, shards)
            self.engine = "fleet"
            self.stepper = FleetStepper(sim, shards, live=live)
        else:
            if shards != 1:
                raise ValueError(
                    f"shards={shards} is only meaningful with engine='fleet'"
                )
            if sim._resolve_engine(engine):
                from repro.runtime.fastpath import FastStepper

                self.engine = "fast"
                self.stepper = FastStepper(
                    sim,
                    live=live,
                    prev_t=next_minute - 1 if live is not None else -1,
                )
            else:
                self.engine = "reference"
                self.stepper = ReferenceStepper(
                    sim, live=live, next_minute=next_minute, cursor=cursor
                )

    # -- position ----------------------------------------------------------

    @property
    def next_minute(self) -> int:
        """The first minute not yet executed."""
        return self.stepper.next_minute

    @property
    def done(self) -> bool:
        """True once every minute of the horizon has executed."""
        return self.stepper.next_minute >= self.horizon

    # -- stepping ----------------------------------------------------------

    def advance(
        self,
        minute: int | None = None,
        invocations: Mapping[int, int] | list | None = None,
    ) -> AdvanceResult:
        """Execute one minute and return its control decisions.

        ``minute`` defaults to :attr:`next_minute`; a later minute first
        drives the gap from the trace (all-idle for online sessions).
        Earlier minutes error — sessions only move forward; ``restore()``
        an earlier snapshot to rewind.

        ``invocations`` overrides the trace for the target minute: a
        ``{fid: count}`` mapping or ``(fid, count)`` pairs (duplicates
        sum). ``None`` replays the trace column — the replay-mode
        default; online sessions pass each minute's arrivals here.
        """
        stepper = self.stepper
        start = stepper.next_minute
        if minute is None:
            minute = start
        minute = int(minute)
        if minute < start:
            raise ValueError(
                f"minute {minute} was already executed (next is {start}); "
                "sessions only move forward — restore() an earlier "
                "snapshot to rewind"
            )
        if minute >= self.horizon:
            raise ValueError(
                f"minute {minute} is past the horizon "
                f"({self.horizon} minutes)"
            )
        t0 = perf_counter()
        counts = self.trace.counts
        for t in range(start, minute):
            fids = np.flatnonzero(counts[:, t])
            self._step(t, fids, counts[fids, t])
        obs = stepper.obs
        n_rec = len(obs.records) if obs is not None else 0
        inv0 = stepper.n_invocations
        cold0 = stepper.n_cold
        forced0 = self._n_forced()
        fids, fid_counts = self._minute_events(minute, invocations)
        self._step(minute, fids, fid_counts)
        self._wall += perf_counter() - t0
        decisions = tuple(obs.records[n_rec:]) if obs is not None else ()
        return AdvanceResult(
            minute=minute,
            n_invocations=stepper.n_invocations - inv0,
            n_cold=stepper.n_cold - cold0,
            n_forced_downgrades=self._n_forced() - forced0,
            memory_mb=self._memory_mb(minute),
            decisions=decisions,
        )

    def replay(self) -> RunResult:
        """Drive every remaining minute from the trace and finish.

        Bit-identical to ``Simulation.run()`` on the session's engine:
        the reference and fleet engines walk each minute through the
        shared stepper, and the fast engine keeps its event-driven shape
        (idle gaps settle as bulk spans, exactly the grouping
        :func:`~repro.runtime.fastpath.run_fast` uses), so the
        skip-idle-minutes advantage survives the session detour.
        """
        t0 = perf_counter()
        stepper = self.stepper
        counts = self.trace.counts
        start = stepper.next_minute
        if self.engine == "fast" and start < self.horizon:
            ev_t, ev_fid = np.nonzero(counts.T)
            ev_count = counts.T[ev_t, ev_fid]
            k = int(np.searchsorted(ev_t, start))
            group_ends = np.flatnonzero(np.diff(ev_t[k:])) + 1
            begin = 0
            for end in [*group_ends.tolist(), int(ev_t.size) - k]:
                if end == begin:
                    continue
                t = int(ev_t[k + begin])
                if stepper.prev_t + 1 < t:
                    stepper.idle_span(stepper.prev_t + 1, t)
                stepper.serve_minute(
                    t,
                    ev_fid[k + begin : k + end],
                    ev_count[k + begin : k + end],
                )
                begin = end
            stepper.idle_span(stepper.prev_t + 1, self.horizon)
        else:
            for t in range(start, self.horizon):
                fids = np.flatnonzero(counts[:, t])
                self._step(t, fids, counts[fids, t])
        self._wall += perf_counter() - t0
        return self.result()

    def result(self) -> RunResult:
        """The finished run's :class:`RunResult` (replays any remaining
        minutes from the trace first). ``wall_clock_s`` accumulates the
        time spent inside ``advance()``/``replay()`` calls."""
        if self.stepper.next_minute < self.horizon:
            return self.replay()
        t0 = perf_counter()
        result = self.stepper.finalize()
        self._wall += perf_counter() - t0
        if (
            result.obs is not None
            and result.obs.spans_enabled
            and not self._span_added
        ):
            result.obs.spans.add("engine-total", self._wall)
            self._span_added = True
        return replace(result, wall_clock_s=self._wall)

    # -- decisions ---------------------------------------------------------

    def decisions(
        self, fid: int | None = None, *, kind: str | None = None
    ) -> list[dict]:
        """All decision records so far, optionally filtered by function
        id and/or record ``kind`` (fleet sessions record the sampled
        functions only; see :mod:`repro.obs.fleet`)."""
        obs = self.stepper.obs
        if obs is None:
            return []
        records = obs.records
        if fid is None and kind is None:
            return list(records)
        return [
            r
            for r in records
            if (fid is None or r.get("fid") == fid)
            and (kind is None or r.get("kind") == kind)
        ]

    # -- identity ----------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable SHA-256 naming *what this session runs*.

        Hashes the engine/shard selection, mode, policy class, the full
        ``SimulationConfig`` (fault plan and observability included) and
        the trace content (shape + counts bytes — already perturbed if
        the fault plan perturbs traces, so a session rebuilt from the
        same spec hashes identically). The serve-layer journal records
        it at open and recovery refuses to replay advances against a
        session that rebuilt differently — a spec or trace drift would
        otherwise replay into silently different state.
        """
        from repro.utils.atomicio import sha256_bytes

        trace_sha = sha256_bytes(self.trace.counts.tobytes())
        identity = "|".join(
            (
                self.engine,
                str(self.shards),
                str(self.online),
                type(self.sim.policy).__name__,
                repr(self.sim.config),
                f"{self.n_functions}x{self.horizon}",
                trace_sha,
            )
        )
        return sha256_bytes(identity.encode("utf-8"))

    # -- snapshot / restore ------------------------------------------------

    def snapshot(self) -> SimulationState:
        """Capture the session as a :class:`SimulationState`.

        ``engine`` is ``"session:<name>"`` so engine checkpoints and
        session snapshots cannot be confused; the payload is one pickle
        of the stepper's live state plus the binding context (trace,
        assignment, config), so shared identities survive the round trip
        — the same rule the engine checkpoints follow. Persist with
        ``snapshot().save(path)``.
        """
        stepper = self.stepper
        cursor: tuple = (
            (stepper.cur_bucket,) if self.engine == "reference" else ()
        )
        payload = {
            "live": stepper.live_state(),
            "meta": {
                "trace": self.sim.trace,
                "assignment": self.sim.assignment,
                "config": self.sim.config,
                "shards": self.shards,
                "online": self.online,
            },
        }
        return SimulationState.snapshot(
            f"session:{self.engine}", stepper.next_minute, cursor, payload
        )

    @classmethod
    def restore(cls, state: SimulationState | str | Path) -> "ControlSession":
        """Rebuild a session from :meth:`snapshot` (or a saved path).

        The restored session continues bit-identically — replaying the
        rest of the trace matches an uninterrupted run, byte for byte.
        """
        if isinstance(state, (str, Path)):
            state = SimulationState.load(state)
        prefix, _, name = state.engine.partition(":")
        if prefix != "session" or not name:
            raise ValueError(
                f"not a session snapshot: engine={state.engine!r} "
                "(engine checkpoints resume through Simulation.run)"
            )
        payload = state.restore()
        live, meta = payload["live"], payload["meta"]
        # Rebuild the Simulation context without __init__: the captured
        # trace is already fault-perturbed (Simulation.__init__ perturbs
        # up front), so going through it again would perturb twice.
        sim = object.__new__(Simulation)
        sim.trace = meta["trace"]
        sim.assignment = meta["assignment"]
        sim.policy = live["policy"]
        sim.config = meta["config"]
        return cls(
            sim,
            engine=name,
            shards=meta["shards"],
            online=meta["online"],
            _restored=(live, state.next_minute, state.cursor),
        )

    # -- engine dispatch ---------------------------------------------------

    def _step(self, t: int, fids: np.ndarray, fid_counts: np.ndarray) -> None:
        if self.engine == "fast":
            self.stepper.advance_minute(t, fids, fid_counts)
        else:
            self.stepper.step(t, fids, fid_counts)

    def _n_forced(self) -> int:
        if self.engine == "fleet":
            return int(self.stepper.fleet.n_forced)
        return int(self.stepper.n_forced)

    def _memory_mb(self, t: int) -> float:
        if self.engine == "fast":
            # The fast stepper doesn't track a last-minute scalar; the
            # schedule ledger answers the same question read-only.
            return float(self.stepper.schedule.memory_at(t))
        return float(self.stepper.last_memory_mb)

    def _minute_events(
        self,
        t: int,
        invocations: Mapping[int, int] | Iterable[tuple[int, int]] | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        if invocations is None:
            col = self.trace.counts[:, t]
            fids = np.flatnonzero(col)
            return fids, col[fids]
        if isinstance(invocations, Mapping):
            items = list(invocations.items())
        else:
            items = [(fid, count) for fid, count in invocations]
        agg: dict[int, int] = {}
        for fid, count in items:
            fid = int(fid)
            count = int(count)
            if not 0 <= fid < self.n_functions:
                raise ValueError(
                    f"invocation fid {fid} out of range "
                    f"0..{self.n_functions - 1}"
                )
            if count <= 0:
                raise ValueError(
                    f"invocation count for fid {fid} must be positive, "
                    f"got {count}"
                )
            agg[fid] = agg.get(fid, 0) + count
        fids = np.array(sorted(agg), dtype=np.int64)
        counts = np.array(
            [agg[f] for f in fids.tolist()], dtype=np.int64
        )
        return fids, counts


def open_session(
    trace: Trace | TraceMeta,
    *,
    policy: str | KeepAlivePolicy = "pulse",
    assignment: dict[int, ModelFamily] | None = None,
    config: SimulationConfig | None = None,
    engine: str = "auto",
    shards: int = 1,
    faults: FaultPlan | str | None = None,
    observe: bool | ObservabilityConfig | None = None,
    seed: int = 0,
) -> ControlSession:
    """Open an incremental control-plane session.

    The one positional argument is the workload: a recorded
    :class:`~repro.traces.schema.Trace` (replay mode) or a
    :class:`TraceMeta` (online mode — invocations arrive per
    ``advance()`` call). Everything else mirrors
    :func:`repro.api.simulate` keyword-for-keyword: ``policy`` is a
    registry name or a bound-able policy object (a name's registered
    keep-alive window applies when ``config`` is omitted), ``faults``
    a :class:`FaultPlan` or spec string, ``observe`` an override for
    ``config.observe``. ``assignment`` defaults to the balanced sampler
    (:func:`repro.experiments.assignments.sample_assignment`) with
    ``seed``.
    """
    online = isinstance(trace, TraceMeta)
    if online:
        trace = trace.to_trace()
    if not isinstance(trace, Trace):
        raise TypeError(
            f"trace must be a Trace or TraceMeta, got {type(trace).__name__}"
        )
    cfg = config if config is not None else SimulationConfig()
    if isinstance(policy, str):
        from repro.api import policy_spec

        spec = policy_spec(policy)
        if config is None and spec.keep_alive_window != cfg.keep_alive_window:
            cfg = replace(cfg, keep_alive_window=spec.keep_alive_window)
        policy = spec.factory()
    if isinstance(faults, str):
        faults = FaultPlan.from_spec(faults)
    if faults is not None:
        cfg = replace(cfg, faults=faults)
    if observe is not None:
        cfg = replace(cfg, observe=observe)
    if online:
        if cfg.faults is not None and cfg.faults.perturbs_trace:
            raise ValueError(
                "online sessions (TraceMeta) cannot use trace-perturbing "
                "fault plans — there is no recorded trace to perturb; "
                "open with a Trace, or restrict the plan to runtime faults"
            )
        if type(policy).__name__ == "IdealOraclePolicy":
            raise ValueError(
                "the 'ideal' oracle needs the full future trace and "
                "cannot run in an online session (TraceMeta)"
            )
    if assignment is None:
        from repro.experiments.assignments import sample_assignment

        assignment = sample_assignment(trace.n_functions, seed=seed)
    sim = Simulation(trace, assignment, policy, cfg)
    return ControlSession(sim, engine=engine, shards=shards, online=online)
