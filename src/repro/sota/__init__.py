"""State-of-the-art serverless warm-up strategies (§IV) and PULSE shims.

- :mod:`repro.sota.wild` — *Serverless in the Wild* (ATC'20): hybrid
  histogram of idle times with percentile-derived pre-warm/keep-alive
  windows, a time-series (AR) fallback for out-of-bounds patterns, and a
  conservative fixed window while learning;
- :mod:`repro.sota.icebreaker` — *IceBreaker* (ASPLOS'22): Fourier-based
  invocation forecasting (top-k harmonic extrapolation of the recent
  per-minute invocation signal);
- :mod:`repro.sota.arima` — the lightweight autoregressive forecaster the
  Wild policy uses where the original used ARIMA;
- :mod:`repro.sota.integration` — :class:`PulseIntegratedPolicy`, which
  preserves the base technique's predicted concurrency and lets PULSE
  choose variants and apply cross-function peak flattening (Figure 8).

Neither technique is model-variant aware: standalone, they keep the
highest-quality variant alive during their predicted windows, exactly as
the paper configures them.
"""

from repro.sota.arima import ARForecaster
from repro.sota.wild import WildPolicy
from repro.sota.icebreaker import IceBreakerPolicy
from repro.sota.integration import PulseIntegratedPolicy

__all__ = [
    "ARForecaster",
    "IceBreakerPolicy",
    "PulseIntegratedPolicy",
    "WildPolicy",
]
