"""Autoregressive forecasting of idle times.

Serverless-in-the-Wild falls back to an ARIMA model for functions whose
idle-time histogram is not representative (heavy tails / out-of-bounds
patterns). Offline we have no statsmodels, so we implement the piece the
policy actually needs: a one-step-ahead autoregressive forecaster, AR(p)
fit by ordinary least squares on the recent idle-time series — the AR
core of ARIMA(p, 0, 0). For the gently drifting idle-time series this
fallback sees, differencing and MA terms change forecasts marginally; the
policy only consumes the point forecast and clamps it into a pre-warm
window anyway.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = ["ARForecaster"]


class ARForecaster:
    """AR(p) least-squares one-step forecaster.

    Fit on demand from whatever history is passed in; degrades gracefully
    with short histories (falls back to lower orders, then to the mean,
    then to the last value).
    """

    def __init__(self, order: int = 3):
        check_positive_int("order", order)
        self.order = order

    def forecast(self, series: np.ndarray | list[float]) -> float:
        """Predict the next value of ``series``."""
        x = np.asarray(series, dtype=float)
        if x.size == 0:
            raise ValueError("cannot forecast from an empty series")
        if x.size == 1:
            return float(x[0])
        p = min(self.order, x.size - 1)
        if x.size < 2 * p + 1:
            # Too short to fit reliably: use the mean of what we have.
            return float(x.mean())
        # Design matrix of lagged windows: rows [x[t-1], ..., x[t-p], 1].
        n = x.size - p
        design = np.empty((n, p + 1))
        for lag in range(1, p + 1):
            design[:, lag - 1] = x[p - lag : p - lag + n]
        design[:, p] = 1.0
        target = x[p:]
        coef, *_ = np.linalg.lstsq(design, target, rcond=None)
        last_lags = x[-1 : -p - 1 : -1]  # most recent first
        pred = float(last_lags @ coef[:p] + coef[p])
        if not np.isfinite(pred):
            return float(x.mean())
        return pred
