"""IceBreaker (Roy, Patel, Tiwari — ASPLOS'22).

IceBreaker forecasts each function's invocations with a fast
Fourier-transform method: the recent per-minute invocation signal is
decomposed, the dominant harmonics are kept, and the harmonic series is
extrapolated into the future; the function is warmed for the minutes
whose predicted intensity crosses a threshold.

(The original also scores heterogeneous node choices with a utility
function; the paper's evaluation pins a single node type, "thereby
eliminating the need for utility function computation in IceBreaker", so
only the predictor is relevant here.)

Standalone IceBreaker is variant-unaware and warms the highest-quality
variant at predicted minutes.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.models.variants import ModelVariant
from repro.runtime.policy import KeepAlivePolicy
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["IceBreakerPolicy", "fft_extrapolate"]


def fft_extrapolate(signal: np.ndarray, horizon: int, top_k: int) -> np.ndarray:
    """Extrapolate ``signal`` by ``horizon`` steps with its ``top_k``
    dominant harmonics.

    Returns the predicted values for steps ``len(signal) .. len(signal) +
    horizon - 1``. The DC component is always kept (it carries the base
    rate); the remaining k-1 slots go to the largest-magnitude harmonics.
    """
    x = np.asarray(signal, dtype=float)
    n = x.size
    if n == 0:
        raise ValueError("cannot extrapolate an empty signal")
    if horizon <= 0:
        raise ValueError(f"horizon must be positive, got {horizon}")
    if top_k <= 0:
        raise ValueError(f"top_k must be positive, got {top_k}")
    spectrum = np.fft.rfft(x)
    magnitude = np.abs(spectrum)
    keep = np.zeros(spectrum.size, dtype=bool)
    keep[0] = True  # DC
    if top_k > 1 and spectrum.size > 1:
        order = np.argsort(-magnitude[1:]) + 1
        keep[order[: top_k - 1]] = True
    future = np.arange(n, n + horizon)
    # Evaluate the kept harmonics at future indices. rfft bin k has
    # frequency k/n; a real signal's reconstruction doubles every bin
    # except DC and (for even n) Nyquist.
    freqs = np.flatnonzero(keep)
    pred = np.zeros(horizon)
    for k in freqs:
        coef = spectrum[k]
        weight = 1.0 if (k == 0 or (n % 2 == 0 and k == n // 2)) else 2.0
        pred += weight * np.real(coef * np.exp(2j * np.pi * k * future / n)) / n
    return pred


class IceBreakerPolicy(KeepAlivePolicy):
    """FFT-based invocation forecasting keep-alive."""

    name = "IceBreaker"

    def __init__(
        self,
        history_window: int = 256,
        top_k: int = 16,
        threshold: float = 0.25,
        min_history: int = 32,
        learning_window: int = 10,
    ):
        super().__init__()
        check_positive_int("history_window", history_window)
        check_positive_int("top_k", top_k)
        check_fraction("threshold", threshold, inclusive=False)
        check_positive_int("min_history", min_history)
        check_positive_int("learning_window", learning_window)
        self.history_window = history_window
        self.top_k = top_k
        self.threshold = threshold
        self.min_history = min_history
        self.learning_window = learning_window
        self._arrivals: list[deque[int]] = []
        self._first_seen: list[int | None] = []

    def on_bind(self) -> None:
        self._arrivals = [
            deque(maxlen=self.history_window) for _ in range(self.n_functions)
        ]
        self._first_seen = [None] * self.n_functions

    def observe_invocation(self, function_id: int, minute: int, count: int) -> None:
        arr = self._arrivals[function_id]
        if not arr or arr[-1] != minute:
            arr.append(minute)
        if self._first_seen[function_id] is None:
            self._first_seen[function_id] = minute

    def _signal(self, function_id: int, minute: int) -> np.ndarray:
        """Binary per-minute presence over the last ``history_window``
        minutes ending at ``minute`` (inclusive)."""
        x = np.zeros(self.history_window)
        start = minute - self.history_window + 1
        for m in self._arrivals[function_id]:
            if m >= start:
                x[m - start] = 1.0
        return x

    def predicted_minutes(self, function_id: int, minute: int) -> list[int]:
        """Offsets (1..K) whose forecast intensity crosses the threshold."""
        first = self._first_seen[function_id]
        observed = 0 if first is None else minute - first
        if observed < self.min_history:
            # Cold model: fixed provider window while learning.
            return list(range(1, min(self.learning_window, self.keep_alive_window) + 1))
        x = self._signal(function_id, minute)
        pred = fft_extrapolate(x, self.keep_alive_window, self.top_k)
        return [d + 1 for d in range(self.keep_alive_window) if pred[d] >= self.threshold]

    # -- engine interface ---------------------------------------------------
    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        return self.family(function_id).highest

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        keep = set(self.predicted_minutes(function_id, minute))
        highest = self.family(function_id).highest
        return [
            highest if d in keep else None
            for d in range(1, self.keep_alive_window + 1)
        ]
