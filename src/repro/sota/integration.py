"""Integrating PULSE into existing warm-up techniques (Figure 8).

§IV: "Once techniques like Wild and IceBreaker forecast the inter-arrival
times of functions, PULSE takes the lead in determining which model
variant should be kept active and for how long."

:class:`PulseIntegratedPolicy` therefore composes a base predictor with a
full PULSE instance:

- the **base technique's predicted concurrency is preserved**: a minute
  is a keep-alive candidate only if the base policy would have kept the
  function warm then;
- within PULSE's keep-alive window, **PULSE picks the variant** for each
  candidate minute from its probability bands (instead of the base's
  indiscriminate highest-quality variant);
- beyond PULSE's window the keep-alive is released — PULSE also decides
  "for how long", so the base technique's long tails (Wild keeps
  containers until the 99th idle-time percentile) are cut to the
  keep-alive period PULSE reasons about. This is what collapses Wild's
  keep-alive cost (the paper reports −99 %) at the price of extra cold
  starts (+27 % service time), while IceBreaker — whose predictions are
  already short-horizon — just gets cheaper variants (−14 % cost, −7 %
  service time);
- PULSE's **cross-function optimizer** then flattens memory peaks as
  usual ("followed by PULSE's function-centric and global optimization").
"""

from __future__ import annotations

from repro.core.pulse import PulseConfig, PulsePolicy
from repro.models.variants import ModelFamily, ModelVariant
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.schedule import KeepAliveSchedule
from repro.traces.schema import Trace

__all__ = ["PulseIntegratedPolicy"]


class PulseIntegratedPolicy(KeepAlivePolicy):
    """A base warm-up predictor with PULSE layered on top."""

    def __init__(self, base: KeepAlivePolicy, pulse_config: PulseConfig | None = None):
        super().__init__()
        if isinstance(base, (PulsePolicy, PulseIntegratedPolicy)):
            raise TypeError("base must be a non-PULSE warm-up technique")
        self.base = base
        cfg = pulse_config or PulseConfig()
        if cfg.window is None:
            # PULSE reasons about the paper's 10-minute period even when
            # the engine capacity is larger to fit the base's long plans.
            cfg = type(cfg)(**{**cfg.__dict__, "window": 10})
        self.pulse = PulsePolicy(cfg)
        self.name = f"{base.name}+PULSE"
        self.is_oracle = base.is_oracle

    # -- lifecycle ------------------------------------------------------------
    def attach_observability(self, obs=None, event_sink=None) -> None:
        super().attach_observability(obs, event_sink)
        # The inner PULSE makes the actual variant/downgrade decisions, so
        # it owns the trace; the base predictor sees the session too in
        # case a custom base instruments itself.
        self.base.attach_observability(obs, event_sink)
        self.pulse.attach_observability(obs, event_sink)

    def bind(
        self,
        trace: Trace,
        assignment: dict[int, ModelFamily],
        keep_alive_window: int,
    ) -> None:
        super().bind(trace, assignment, keep_alive_window)
        self.base.bind(trace, assignment, keep_alive_window)
        self.pulse.bind(trace, assignment, keep_alive_window)

    def observe_invocation(self, function_id: int, minute: int, count: int) -> None:
        self.base.observe_invocation(function_id, minute, count)
        self.pulse.observe_invocation(function_id, minute, count)

    # -- decisions --------------------------------------------------------------
    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        return self.pulse.cold_variant(function_id, minute)

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        base_plan = self.base.plan(function_id, minute)
        pulse_plan = self.pulse.plan(function_id, minute)
        combined: list[ModelVariant | None] = []
        for d in range(len(base_plan)):
            if base_plan[d] is None:
                combined.append(None)  # base predicts no invocation there
            elif d < len(pulse_plan):
                combined.append(pulse_plan[d])  # PULSE picks the variant
            else:
                combined.append(None)  # beyond PULSE's keep-alive period
        return combined

    def review_minute(self, minute: int, schedule: KeepAliveSchedule) -> None:
        self.pulse.review_minute(minute, schedule)

    def idle_review(self, minute: int, schedule: KeepAliveSchedule) -> bool:
        return self.pulse.idle_review(minute, schedule)
