"""Serverless in the Wild (Shahrad et al., USENIX ATC'20).

The hybrid-histogram keep-alive policy: per function, track the idle-time
(inter-arrival) distribution in minute bins up to a range; after each
invocation,

- with a *representative* histogram, release the container and plan a
  **pre-warm** at the idle-time distribution's head percentile (5th,
  shrunk by a safety margin) and a **keep-alive** through its tail
  percentile (99th, grown by the margin);
- with a heavy-tailed / out-of-bounds pattern (too much mass beyond the
  histogram range), fall back to a time-series forecast of the next idle
  time (:class:`~repro.sota.arima.ARForecaster`) and warm a margin window
  around the prediction;
- while still learning (few samples), use the provider's standard fixed
  keep-alive window.

The policy is variant-unaware: it always warms the highest-quality
variant (§IV — "the conventional practice of invoking high-quality models
indiscriminately"). Run it with a schedule capacity that accommodates its
long keep-alives, e.g. ``SimulationConfig(keep_alive_window=240)``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.models.variants import ModelVariant
from repro.runtime.policy import KeepAlivePolicy
from repro.sota.arima import ARForecaster
from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["WildPolicy"]


class _WildState:
    """Per-function hybrid histogram state."""

    __slots__ = ("counts", "n_in_range", "n_oob", "recent_its", "last_arrival")

    def __init__(self, histogram_range: int, recent_len: int):
        self.counts = np.zeros(histogram_range, dtype=np.int64)  # bin d-1: IT == d
        self.n_in_range = 0
        self.n_oob = 0
        self.recent_its: deque[int] = deque(maxlen=recent_len)
        self.last_arrival: int | None = None

    @property
    def n_total(self) -> int:
        return self.n_in_range + self.n_oob


class WildPolicy(KeepAlivePolicy):
    """Hybrid histogram pre-warm / keep-alive prediction."""

    name = "Wild"

    def __init__(
        self,
        histogram_range: int = 240,
        head_percentile: float = 5.0,
        tail_percentile: float = 99.0,
        margin: float = 0.15,
        oob_threshold: float = 0.5,
        min_samples: int = 8,
        learning_window: int = 10,
        ar_order: int = 3,
    ):
        super().__init__()
        check_positive_int("histogram_range", histogram_range)
        if not 0.0 < head_percentile < tail_percentile <= 100.0:
            raise ValueError(
                "need 0 < head_percentile < tail_percentile <= 100, got "
                f"{head_percentile}/{tail_percentile}"
            )
        check_fraction("margin", margin)
        check_fraction("oob_threshold", oob_threshold)
        check_positive_int("min_samples", min_samples)
        check_positive_int("learning_window", learning_window)
        self.histogram_range = histogram_range
        self.head_percentile = head_percentile
        self.tail_percentile = tail_percentile
        self.margin = margin
        self.oob_threshold = oob_threshold
        self.min_samples = min_samples
        self.learning_window = learning_window
        self._forecaster = ARForecaster(order=ar_order)
        self._state: list[_WildState] = []

    def on_bind(self) -> None:
        self._state = [
            _WildState(self.histogram_range, recent_len=64)
            for _ in range(self.n_functions)
        ]

    # -- history ------------------------------------------------------------
    def observe_invocation(self, function_id: int, minute: int, count: int) -> None:
        s = self._state[function_id]
        if s.last_arrival is not None and minute > s.last_arrival:
            it = minute - s.last_arrival
            s.recent_its.append(it)
            if it <= self.histogram_range:
                s.counts[it - 1] += 1
                s.n_in_range += 1
            else:
                s.n_oob += 1
        s.last_arrival = minute

    # -- prediction -----------------------------------------------------------
    def _percentile_bin(self, counts: np.ndarray, q: float) -> int:
        """Idle-time value at percentile ``q`` of the binned distribution."""
        total = counts.sum()
        cdf = np.cumsum(counts)
        rank = q / 100.0 * total
        return int(np.searchsorted(cdf, rank, side="left")) + 1

    def predicted_window(self, function_id: int, minute: int) -> tuple[int, int]:
        """(pre-warm offset, keep-alive end offset) after an invocation.

        Offsets are in minutes relative to the invocation; (1, W) means
        "stay warm from the next minute through offset W". A pre-warm
        offset > 1 releases the container and re-warms it later.
        """
        s = self._state[function_id]
        cap = self.keep_alive_window  # schedule capacity
        if s.n_total < self.min_samples:
            # Still learning: provider-standard fixed keep-alive.
            return 1, min(self.learning_window, cap)
        if s.n_oob / s.n_total > self.oob_threshold:
            # Heavy tail: time-series fallback around the forecast IT.
            pred = self._forecaster.forecast(np.array(s.recent_its, dtype=float))
            pred = max(1.0, pred)
            start = int(max(1.0, np.floor(pred * (1.0 - self.margin))))
            end = int(np.ceil(pred * (1.0 + self.margin)))
            return min(start, cap), min(max(end, start), cap)
        head = self._percentile_bin(s.counts, self.head_percentile)
        tail = self._percentile_bin(s.counts, self.tail_percentile)
        start = int(max(1.0, np.floor(head * (1.0 - self.margin))))
        end = int(np.ceil(tail * (1.0 + self.margin)))
        return min(start, cap), min(max(end, start), cap)

    # -- engine interface ---------------------------------------------------
    def cold_variant(self, function_id: int, minute: int) -> ModelVariant:
        return self.family(function_id).highest

    def plan(self, function_id: int, minute: int) -> list[ModelVariant | None]:
        start, end = self.predicted_window(function_id, minute)
        highest = self.family(function_id).highest
        return [
            highest if start <= d <= end else None
            for d in range(1, self.keep_alive_window + 1)
        ]
