"""Workload-trace substrate.

PULSE is evaluated against the Microsoft Azure Functions production trace
(two weeks of per-minute invocation counts; the paper uses the 12
representative functions previously used by Serverless-in-the-Wild and
IceBreaker). This subpackage provides:

- :mod:`repro.traces.schema`    — the in-memory :class:`Trace` representation;
- :mod:`repro.traces.azure`     — loader/writer for the public Azure trace
  CSV schema (``HashFunction, 1, 2, …, 1440`` per-minute count columns);
- :mod:`repro.traces.synthetic` — a calibrated generator that reproduces the
  trace's statistical structure (function archetypes, global peaks,
  day-phase drift) when the real trace is not on disk;
- :mod:`repro.traces.analysis`  — inter-arrival extraction, peak finding and
  the windowed histograms behind Figures 1 and 2.
"""

from repro.traces.schema import FunctionSpec, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace
from repro.traces.azure import load_azure_csv, write_azure_csv
from repro.traces.analysis import (
    interarrival_times,
    invocation_peaks,
    window_interarrival_histogram,
)
from repro.traces.characterize import (
    FunctionCharacterization,
    characterize_function,
    characterize_trace,
    classify,
)

__all__ = [
    "FunctionCharacterization",
    "FunctionSpec",
    "SyntheticTraceConfig",
    "Trace",
    "characterize_function",
    "characterize_trace",
    "classify",
    "generate_trace",
    "interarrival_times",
    "invocation_peaks",
    "load_azure_csv",
    "window_interarrival_histogram",
    "write_azure_csv",
]
