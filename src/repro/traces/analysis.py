"""Trace analysis: inter-arrivals, windowed histograms, peak finding.

These are the measurement tools behind the paper's motivation section:
Figure 1 (per-function inter-arrival histograms inside the 10-minute
keep-alive window), Figure 2 (the same function across different periods)
and the peak identification used by Tables II & III.
"""

from __future__ import annotations

import numpy as np

from repro.traces.schema import Trace
from repro.utils.validation import check_positive_int

__all__ = [
    "interarrival_times",
    "window_interarrival_histogram",
    "invocation_peaks",
    "activity_summary",
]


def interarrival_times(trace: Trace, function_id: int) -> np.ndarray:
    """Inter-arrival times (minutes) between successive invocation minutes.

    Matches the paper's minute resolution: several invocations inside one
    minute count as a single arrival minute, and the gap is the difference
    between consecutive arrival minutes.
    """
    minutes = trace.invocation_minutes(function_id)
    if len(minutes) < 2:
        return np.empty(0, dtype=np.int64)
    return np.diff(minutes)


def window_interarrival_histogram(
    trace: Trace, function_id: int, window: int = 10
) -> np.ndarray:
    """Percentage of invocations re-arriving at each minute of the window.

    Returns an array ``h`` of length ``window`` where ``h[k-1]`` is the
    percentage of *all* inter-arrivals that equal ``k`` minutes — i.e. the
    y-axis of Figures 1 and 2 ("percentage of invocations") over the
    x-axis 1..window (the 10-minute keep-alive timeframe).
    """
    check_positive_int("window", window)
    gaps = interarrival_times(trace, function_id)
    hist = np.zeros(window, dtype=float)
    if len(gaps) == 0:
        return hist
    for k in range(1, window + 1):
        hist[k - 1] = 100.0 * np.count_nonzero(gaps == k) / len(gaps)
    return hist


def invocation_peaks(
    trace: Trace, n_peaks: int = 2, min_separation: int = 20
) -> list[int]:
    """Minutes with the highest cumulative invocation volume.

    Reproduces §II's peak designation: the trace's cumulative (all
    concurrent functions) per-minute invocation series is scanned and the
    ``n_peaks`` highest-volume minutes are returned, with at least
    ``min_separation`` minutes between chosen peaks so both of the paper's
    "two prominent peaks" are distinct events.
    """
    check_positive_int("n_peaks", n_peaks)
    check_positive_int("min_separation", min_separation)
    totals = trace.total_per_minute().astype(float)
    order = np.argsort(-totals, kind="stable")
    chosen: list[int] = []
    for m in order:
        if totals[m] <= 0:
            break
        if all(abs(int(m) - c) >= min_separation for c in chosen):
            chosen.append(int(m))
        if len(chosen) == n_peaks:
            break
    return sorted(chosen)


def activity_summary(trace: Trace) -> list[dict[str, float | str]]:
    """Per-function descriptive statistics (used by the trace-analysis example)."""
    rows: list[dict[str, float | str]] = []
    for spec in trace.functions:
        fid = spec.function_id
        gaps = interarrival_times(trace, fid)
        minutes = trace.invocation_minutes(fid)
        rows.append(
            {
                "function": spec.name,
                "archetype": spec.archetype,
                "invocations": float(trace.total_invocations(fid)),
                "active_minutes": float(len(minutes)),
                "median_gap_min": float(np.median(gaps)) if len(gaps) else float("nan"),
                "p90_gap_min": float(np.percentile(gaps, 90))
                if len(gaps)
                else float("nan"),
                "frac_gaps_in_10min": float(np.mean(gaps <= 10)) if len(gaps) else 0.0,
            }
        )
    return rows
