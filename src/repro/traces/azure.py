"""Loader/writer for the public Azure Functions trace CSV schema.

The Microsoft Azure Functions 2019 dataset ("Serverless in the Wild",
ATC'20) ships per-day CSVs with one row per function and columns::

    HashOwner, HashApp, HashFunction, Trigger, 1, 2, ..., 1440

where column *i* holds the invocation count in minute *i* of that day.
:func:`load_azure_csv` reads one or more such files (consecutive days of
the same function population) into a :class:`~repro.traces.schema.Trace`;
:func:`write_azure_csv` writes a trace back out in the same schema, which
is also how the test-suite round-trips the synthetic generator.

Functions are identified by their ``HashFunction`` value; when loading
multiple days, functions absent on some day contribute zero counts for
that day.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.traces.schema import MINUTES_PER_DAY, FunctionSpec, Trace

__all__ = ["load_azure_csv", "write_azure_csv", "top_functions"]

_META_COLUMNS = ("HashOwner", "HashApp", "HashFunction", "Trigger")


def _read_day(path: Path) -> dict[str, np.ndarray]:
    """Read one day file into {HashFunction: counts[1440]}."""
    out: dict[str, np.ndarray] = {}
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        try:
            fn_col = header.index("HashFunction")
        except ValueError:
            raise ValueError(
                f"{path}: missing HashFunction column (header={header[:6]}...)"
            ) from None
        first_minute_col = len([c for c in header if c in _META_COLUMNS])
        n_minutes = len(header) - first_minute_col
        if n_minutes < 1:
            raise ValueError(f"{path}: no per-minute columns found")
        for row in reader:
            if not row:
                continue
            key = row[fn_col]
            vals = np.array(
                [int(float(x)) if x else 0 for x in row[first_minute_col:]],
                dtype=np.int64,
            )
            if key in out:
                out[key] = out[key] + vals  # duplicate rows: sum (same function)
            else:
                out[key] = vals
    return out


def load_azure_csv(
    paths: list[str | Path] | str | Path,
    function_ids: list[str] | None = None,
    name: str = "azure",
) -> Trace:
    """Load consecutive per-day Azure trace CSVs into one :class:`Trace`.

    Parameters
    ----------
    paths:
        One path or a list of per-day CSV paths, in chronological order.
    function_ids:
        Optional subset of ``HashFunction`` values to keep (in this order).
        By default every function seen on any day is kept, ordered by
        total invocation count descending.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    if not paths:
        raise ValueError("at least one CSV path is required")
    days = [_read_day(Path(p)) for p in paths]
    day_lengths = [len(next(iter(d.values()))) if d else MINUTES_PER_DAY for d in days]

    all_keys: dict[str, int] = {}
    for d in days:
        for k, v in d.items():
            all_keys[k] = all_keys.get(k, 0) + int(v.sum())
    if function_ids is None:
        keys = sorted(all_keys, key=lambda k: (-all_keys[k], k))
    else:
        missing = [k for k in function_ids if k not in all_keys]
        if missing:
            raise KeyError(f"functions not present in trace files: {missing}")
        keys = list(function_ids)
    if not keys:
        raise ValueError("no functions found in the given files")

    horizon = sum(day_lengths)
    counts = np.zeros((len(keys), horizon), dtype=np.int64)
    offset = 0
    for d, length in zip(days, day_lengths):
        for i, k in enumerate(keys):
            if k in d:
                counts[i, offset : offset + length] = d[k]
        offset += length

    specs = tuple(
        FunctionSpec(function_id=i, name=k, archetype="azure")
        for i, k in enumerate(keys)
    )
    return Trace(counts=counts, functions=specs, name=name)


def top_functions(trace: Trace, k: int) -> Trace:
    """Restrict a trace to its ``k`` most-invoked functions (the paper keeps
    the 12 most commonly used functions)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    totals = trace.counts.sum(axis=1)
    order = np.argsort(-totals, kind="stable")[: min(k, trace.n_functions)]
    return trace.select_functions(list(order), name=f"{trace.name}-top{k}")


def write_azure_csv(trace: Trace, directory: str | Path, prefix: str = "day") -> list[Path]:
    """Write a trace as per-day CSVs in the Azure schema; returns the paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    n_days = int(np.ceil(trace.horizon / MINUTES_PER_DAY))
    paths: list[Path] = []
    for day in range(n_days):
        start = day * MINUTES_PER_DAY
        stop = min(start + MINUTES_PER_DAY, trace.horizon)
        width = stop - start
        path = directory / f"{prefix}{day + 1:02d}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                list(_META_COLUMNS) + [str(m) for m in range(1, width + 1)]
            )
            for spec in trace.functions:
                row = [
                    f"owner{spec.function_id:04d}",
                    f"app{spec.function_id:04d}",
                    spec.name,
                    "http",
                ]
                row += [str(int(c)) for c in trace.counts[spec.function_id, start:stop]]
                writer.writerow(row)
        paths.append(path)
    return paths
