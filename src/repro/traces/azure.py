"""Loader/writer for the public Azure Functions trace CSV schema.

The Microsoft Azure Functions 2019 dataset ("Serverless in the Wild",
ATC'20) ships per-day CSVs with one row per function and columns::

    HashOwner, HashApp, HashFunction, Trigger, 1, 2, ..., 1440

where column *i* holds the invocation count in minute *i* of that day.
:func:`load_azure_csv` reads one or more such files (consecutive days of
the same function population) into a :class:`~repro.traces.schema.Trace`;
:func:`write_azure_csv` writes a trace back out in the same schema, which
is also how the test-suite round-trips the synthetic generator.

Functions are identified by their ``HashFunction`` value; when loading
multiple days, functions absent on some day contribute zero counts for
that day.

Ingestion hardening
-------------------
Real trace dumps arrive with truncated rows, negative or fractional
counts and stray text. ``load_azure_csv`` validates every row and offers
two failure modes:

- ``mode="strict"`` (default): the first malformed row raises
  :class:`~repro.traces.schema.MalformedRowError` naming the file, line
  and reason — nothing is silently mis-parsed (the historical loader
  truncated ``"3.7"`` to 3 and accepted negative counts).
- ``mode="lenient"``: malformed rows are *quarantined* — skipped, counted
  in the caller's :class:`~repro.traces.schema.IngestReport`, and (when
  ``quarantine_path`` is given) appended to a JSONL sidecar with their
  reasons, so a long sweep survives a dirty dump without hiding it.

Empty cells are zero in both modes (the public dataset uses them that
way). Duplicate ``HashFunction`` rows are summed in both modes — the
dataset legitimately splits one function across rows.

Bounded-memory ingestion
------------------------
The full dataset holds tens of thousands of functions x 1440 minutes
per day; materializing every history just to keep the busiest few is
the dominant memory cost of ingestion. ``load_azure_csv(..., top_k=k)``
streams instead: a first pass accumulates one running total per
function (no histories), the winners are picked by ``(-total, key)``,
and a second pass materializes counts for the selected ``k`` functions
only. Peak memory is ``O(#functions)`` totals plus the final
``k x horizon`` array — never ``#functions x horizon`` — and the result
is identical to loading everything and then taking the same top ``k``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.traces.schema import (
    MINUTES_PER_DAY,
    FunctionSpec,
    IngestReport,
    MalformedRowError,
    RowIssue,
    Trace,
)
from repro.utils.atomicio import atomic_writer

__all__ = ["load_azure_csv", "write_azure_csv", "top_functions"]

_META_COLUMNS = ("HashOwner", "HashApp", "HashFunction", "Trigger")
_MODES = ("strict", "lenient")


def _parse_count(cell: str) -> int:
    """One minute cell -> non-negative int; raises ValueError with the
    reason on anything the schema does not allow."""
    if not cell:
        return 0  # empty cell == zero invocations (dataset convention)
    try:
        value = float(cell)
    except ValueError:
        raise ValueError(f"non-numeric count {cell!r}") from None
    if not np.isfinite(value):
        raise ValueError(f"non-finite count {cell!r}")
    if value != int(value):
        raise ValueError(f"non-integral count {cell!r}")
    if value < 0:
        raise ValueError(f"negative count {cell!r}")
    return int(value)


def _read_day(
    path: Path, mode: str, report: IngestReport
) -> dict[str, np.ndarray]:
    """Read one day file into {HashFunction: counts[1440]}, validating
    every row per ``mode`` (see module docstring)."""
    out: dict[str, np.ndarray] = {}
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        try:
            fn_col = header.index("HashFunction")
        except ValueError:
            raise ValueError(
                f"{path}: missing HashFunction column (header={header[:6]}...)"
            ) from None
        first_minute_col = len([c for c in header if c in _META_COLUMNS])
        n_minutes = len(header) - first_minute_col
        if n_minutes < 1:
            raise ValueError(f"{path}: no per-minute columns found")
        n_columns = len(header)
        for row in reader:
            if not row:
                continue
            report.n_rows += 1
            try:
                if len(row) != n_columns:
                    raise ValueError(
                        f"expected {n_columns} columns, got {len(row)}"
                    )
                key = row[fn_col]
                if not key:
                    raise ValueError("empty HashFunction")
                vals = np.array(
                    [_parse_count(x) for x in row[first_minute_col:]],
                    dtype=np.int64,
                )
            except ValueError as exc:
                issue = RowIssue(
                    file=str(path),
                    line=reader.line_num,
                    function=row[fn_col] if len(row) > fn_col else "",
                    reason=str(exc),
                )
                if mode == "strict":
                    raise MalformedRowError(issue) from None
                report.record_issue(issue)
                continue
            report.n_ok += 1
            if key in out:
                out[key] = out[key] + vals  # duplicate rows: sum (same function)
            else:
                out[key] = vals
    return out


def _day_layout(header: list[str], path: Path) -> tuple[int, int, int]:
    """Validate a day file's header; returns (fn_col, first_minute_col,
    n_columns)."""
    try:
        fn_col = header.index("HashFunction")
    except ValueError:
        raise ValueError(
            f"{path}: missing HashFunction column (header={header[:6]}...)"
        ) from None
    first_minute_col = len([c for c in header if c in _META_COLUMNS])
    if len(header) - first_minute_col < 1:
        raise ValueError(f"{path}: no per-minute columns found")
    return fn_col, first_minute_col, len(header)


def _scan_day_totals(
    path: Path, mode: str, report: IngestReport
) -> tuple[dict[str, int], int]:
    """Streaming pass 1: per-function invocation totals for one day file.

    Validates every row exactly like :func:`_read_day` but keeps one
    running integer per function instead of its minute history, so the
    memory high-water mark is independent of the horizon. Returns the
    totals and the day length in minutes (``MINUTES_PER_DAY`` when the
    file held no valid rows, matching the materializing path).
    """
    totals: dict[str, int] = {}
    n_minutes = MINUTES_PER_DAY
    any_ok = False
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        fn_col, first_minute_col, n_columns = _day_layout(header, path)
        for row in reader:
            if not row:
                continue
            report.n_rows += 1
            try:
                if len(row) != n_columns:
                    raise ValueError(
                        f"expected {n_columns} columns, got {len(row)}"
                    )
                key = row[fn_col]
                if not key:
                    raise ValueError("empty HashFunction")
                total = 0
                for cell in row[first_minute_col:]:
                    total += _parse_count(cell)
            except ValueError as exc:
                issue = RowIssue(
                    file=str(path),
                    line=reader.line_num,
                    function=row[fn_col] if len(row) > fn_col else "",
                    reason=str(exc),
                )
                if mode == "strict":
                    raise MalformedRowError(issue) from None
                report.record_issue(issue)
                continue
            report.n_ok += 1
            any_ok = True
            n_minutes = n_columns - first_minute_col
            totals[key] = totals.get(key, 0) + total
    return totals, (n_minutes if any_ok else MINUTES_PER_DAY)


def _gather_day(
    path: Path,
    index: dict[str, int],
    counts: np.ndarray,
    offset: int,
    length: int,
) -> None:
    """Streaming pass 2: materialize one day's counts for the selected
    functions only, adding into ``counts[:, offset:offset+length]``.

    Rows were already validated (and malformed ones recorded) in pass 1,
    so parse failures here are silently skipped and unselected rows are
    never parsed at all.
    """
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        fn_col, first_minute_col, n_columns = _day_layout(header, path)
        for row in reader:
            if not row or len(row) != n_columns:
                continue
            i = index.get(row[fn_col])
            if i is None:
                continue
            try:
                vals = np.array(
                    [_parse_count(x) for x in row[first_minute_col:]],
                    dtype=np.int64,
                )
            except ValueError:
                continue  # quarantined in pass 1
            counts[i, offset : offset + length] += vals


def _load_streaming(
    paths: list[str | Path],
    top_k: int,
    name: str,
    mode: str,
    quarantine_path: str | Path | None,
    report: IngestReport,
) -> Trace:
    """Two-pass bounded-memory loader behind ``load_azure_csv(top_k=...)``."""
    day_totals: list[dict[str, int]] = []
    day_lengths: list[int] = []
    for p in paths:
        totals, n_minutes = _scan_day_totals(Path(p), mode, report)
        day_totals.append(totals)
        day_lengths.append(n_minutes)
    if report.issues and quarantine_path is not None:
        _write_quarantine(Path(quarantine_path), report.issues)
        report.quarantine_path = str(quarantine_path)

    all_keys: dict[str, int] = {}
    for totals in day_totals:
        for k, total in totals.items():
            all_keys[k] = all_keys.get(k, 0) + total
    if not all_keys:
        raise ValueError("no functions found in the given files")
    keys = sorted(all_keys, key=lambda k: (-all_keys[k], k))[:top_k]
    index = {k: i for i, k in enumerate(keys)}

    horizon = sum(day_lengths)
    counts = np.zeros((len(keys), horizon), dtype=np.int64)
    offset = 0
    for p, length in zip(paths, day_lengths):
        _gather_day(Path(p), index, counts, offset, length)
        offset += length

    specs = tuple(
        FunctionSpec(function_id=i, name=k, archetype="azure")
        for i, k in enumerate(keys)
    )
    return Trace(counts=counts, functions=specs, name=name)


def _write_quarantine(path: Path, issues: list[RowIssue]) -> None:
    """Persist the quarantined-row sidecar (JSONL, one issue per line)."""
    with atomic_writer(path) as fh:
        for issue in issues:
            fh.write(json.dumps(issue.as_dict(), sort_keys=True) + "\n")


def load_azure_csv(
    paths: list[str | Path] | str | Path,
    function_ids: list[str] | None = None,
    name: str = "azure",
    *,
    mode: str = "strict",
    top_k: int | None = None,
    quarantine_path: str | Path | None = None,
    report: IngestReport | None = None,
) -> Trace:
    """Load consecutive per-day Azure trace CSVs into one :class:`Trace`.

    Parameters
    ----------
    paths:
        One path or a list of per-day CSV paths, in chronological order.
    function_ids:
        Optional subset of ``HashFunction`` values to keep (in this order).
        By default every function seen on any day is kept, ordered by
        total invocation count descending.
    mode:
        ``"strict"`` (default) raises
        :class:`~repro.traces.schema.MalformedRowError` on the first bad
        row; ``"lenient"`` quarantines bad rows and loads the rest.
    top_k:
        Bounded-memory streaming mode: keep only the ``top_k``
        most-invoked functions (ties broken by key) without ever
        materializing the other histories — see "Bounded-memory
        ingestion" in the module docstring. Mutually exclusive with
        ``function_ids``. The result equals loading everything and
        selecting the same top ``k``.
    quarantine_path:
        Where lenient mode writes the JSONL sidecar of quarantined rows
        (written atomically, only when at least one row was quarantined).
    report:
        An :class:`~repro.traces.schema.IngestReport` to fill in-place
        with row/quarantine counts (one is created internally otherwise).
    """
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if isinstance(paths, (str, Path)):
        paths = [paths]
    if not paths:
        raise ValueError("at least one CSV path is required")
    if report is None:
        report = IngestReport()
    report.mode = mode
    if top_k is not None:
        if top_k <= 0:
            raise ValueError(f"top_k must be positive, got {top_k}")
        if function_ids is not None:
            raise ValueError("top_k and function_ids are mutually exclusive")
        return _load_streaming(
            paths, top_k, name, mode, quarantine_path, report
        )
    days = [_read_day(Path(p), mode, report) for p in paths]
    if report.issues and quarantine_path is not None:
        _write_quarantine(Path(quarantine_path), report.issues)
        report.quarantine_path = str(quarantine_path)
    day_lengths = [len(next(iter(d.values()))) if d else MINUTES_PER_DAY for d in days]

    all_keys: dict[str, int] = {}
    for d in days:
        for k, v in d.items():
            all_keys[k] = all_keys.get(k, 0) + int(v.sum())
    if function_ids is None:
        keys = sorted(all_keys, key=lambda k: (-all_keys[k], k))
    else:
        missing = [k for k in function_ids if k not in all_keys]
        if missing:
            raise KeyError(f"functions not present in trace files: {missing}")
        keys = list(function_ids)
    if not keys:
        raise ValueError("no functions found in the given files")

    horizon = sum(day_lengths)
    counts = np.zeros((len(keys), horizon), dtype=np.int64)
    offset = 0
    for d, length in zip(days, day_lengths):
        for i, k in enumerate(keys):
            if k in d:
                counts[i, offset : offset + length] = d[k]
        offset += length

    specs = tuple(
        FunctionSpec(function_id=i, name=k, archetype="azure")
        for i, k in enumerate(keys)
    )
    return Trace(counts=counts, functions=specs, name=name)


def top_functions(trace: Trace, k: int) -> Trace:
    """Restrict a trace to its ``k`` most-invoked functions (the paper keeps
    the 12 most commonly used functions)."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    totals = trace.counts.sum(axis=1)
    order = np.argsort(-totals, kind="stable")[: min(k, trace.n_functions)]
    return trace.select_functions(list(order), name=f"{trace.name}-top{k}")


def write_azure_csv(trace: Trace, directory: str | Path, prefix: str = "day") -> list[Path]:
    """Write a trace as per-day CSVs in the Azure schema; returns the paths.

    Each day file is written atomically — an interrupt leaves either the
    previous complete file or nothing, never a truncated CSV.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    n_days = int(np.ceil(trace.horizon / MINUTES_PER_DAY))
    paths: list[Path] = []
    for day in range(n_days):
        start = day * MINUTES_PER_DAY
        stop = min(start + MINUTES_PER_DAY, trace.horizon)
        width = stop - start
        path = directory / f"{prefix}{day + 1:02d}.csv"
        with atomic_writer(path, newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                list(_META_COLUMNS) + [str(m) for m in range(1, width + 1)]
            )
            for spec in trace.functions:
                row = [
                    f"owner{spec.function_id:04d}",
                    f"app{spec.function_id:04d}",
                    spec.name,
                    "http",
                ]
                row += [str(int(c)) for c in trace.counts[spec.function_id, start:stop]]
                writer.writerow(row)
        paths.append(path)
    return paths
