"""Loaders for the Azure dataset's metadata files.

Besides per-minute invocation counts, the Azure Functions 2019 dataset
ships two metadata schemas the paper mentions ("the memory allocations
for each function, and their corresponding execution times"):

- ``function_durations_percentiles.anon.d**.csv`` — per function:
  ``HashOwner, HashApp, HashFunction, Average, Count, Minimum, Maximum,
  percentile_Average_0, percentile_Average_1, percentile_Average_25,
  percentile_Average_50, percentile_Average_75, percentile_Average_99,
  percentile_Average_100`` (durations in milliseconds);
- ``app_memory_percentiles.anon.d**.csv`` — per *application*:
  ``HashOwner, HashApp, SampleCount, AverageAllocatedMb,
  AverageAllocatedMb_pct1, …_pct5, …_pct25, …_pct50, …_pct75, …_pct95,
  …_pct99, …_pct100``.

:func:`write_synthetic_metadata` emits files in the same schemas derived
from a :class:`~repro.traces.schema.Trace` and a model assignment, so the
loaders can be exercised end-to-end offline, and so downstream tooling
written against the real dataset runs unchanged on the synthetic one.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.models.variants import ModelFamily
from repro.traces.schema import Trace
from repro.utils.atomicio import atomic_writer

__all__ = [
    "AppMemoryRecord",
    "FunctionDurationRecord",
    "load_app_memory",
    "load_function_durations",
    "write_synthetic_metadata",
]

_DURATION_PCTS = ("0", "1", "25", "50", "75", "99", "100")
_MEMORY_PCTS = ("1", "5", "25", "50", "75", "95", "99", "100")


@dataclass(frozen=True)
class FunctionDurationRecord:
    """One row of the durations schema (milliseconds)."""

    hash_function: str
    average_ms: float
    count: int
    minimum_ms: float
    maximum_ms: float
    percentiles_ms: dict[str, float]  # keyed "0","1","25","50","75","99","100"

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"count must be >= 0, got {self.count}")
        if self.minimum_ms > self.maximum_ms:
            raise ValueError(
                f"minimum {self.minimum_ms} exceeds maximum {self.maximum_ms}"
            )


@dataclass(frozen=True)
class AppMemoryRecord:
    """One row of the app-memory schema (MB)."""

    hash_app: str
    sample_count: int
    average_mb: float
    percentiles_mb: dict[str, float]  # keyed "1","5",...,"100"

    def __post_init__(self) -> None:
        if self.sample_count < 0:
            raise ValueError(f"sample_count must be >= 0, got {self.sample_count}")
        if self.average_mb < 0:
            raise ValueError(f"average_mb must be >= 0, got {self.average_mb}")


def load_function_durations(path: str | Path) -> dict[str, FunctionDurationRecord]:
    """Load one durations file keyed by ``HashFunction``."""
    out: dict[str, FunctionDurationRecord] = {}
    with Path(path).open(newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"HashFunction", "Average", "Count", "Minimum", "Maximum"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: not a durations file (columns {reader.fieldnames})"
            )
        for row in reader:
            pcts = {
                p: float(row[f"percentile_Average_{p}"])
                for p in _DURATION_PCTS
                if f"percentile_Average_{p}" in row and row[f"percentile_Average_{p}"]
            }
            out[row["HashFunction"]] = FunctionDurationRecord(
                hash_function=row["HashFunction"],
                average_ms=float(row["Average"]),
                count=int(float(row["Count"])),
                minimum_ms=float(row["Minimum"]),
                maximum_ms=float(row["Maximum"]),
                percentiles_ms=pcts,
            )
    return out


def load_app_memory(path: str | Path) -> dict[str, AppMemoryRecord]:
    """Load one app-memory file keyed by ``HashApp``."""
    out: dict[str, AppMemoryRecord] = {}
    with Path(path).open(newline="") as fh:
        reader = csv.DictReader(fh)
        required = {"HashApp", "SampleCount", "AverageAllocatedMb"}
        if reader.fieldnames is None or not required <= set(reader.fieldnames):
            raise ValueError(
                f"{path}: not an app-memory file (columns {reader.fieldnames})"
            )
        for row in reader:
            pcts = {
                p: float(row[f"AverageAllocatedMb_pct{p}"])
                for p in _MEMORY_PCTS
                if f"AverageAllocatedMb_pct{p}" in row
                and row[f"AverageAllocatedMb_pct{p}"]
            }
            out[row["HashApp"]] = AppMemoryRecord(
                hash_app=row["HashApp"],
                sample_count=int(float(row["SampleCount"])),
                average_mb=float(row["AverageAllocatedMb"]),
                percentiles_mb=pcts,
            )
    return out


def write_synthetic_metadata(
    trace: Trace,
    assignment: dict[int, ModelFamily],
    directory: str | Path,
) -> tuple[Path, Path]:
    """Emit durations + app-memory files for a trace/assignment.

    Durations come from the assigned family's variant service times (the
    highest variant's warm time as the average; lowest/highest variants
    as min/max); memory from the variants' footprints. Functions map to
    apps one-to-one (``app{fid:04d}``, matching
    :func:`repro.traces.azure.write_azure_csv`).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    dur_path = directory / "function_durations_percentiles.anon.d01.csv"
    mem_path = directory / "app_memory_percentiles.anon.d01.csv"

    with atomic_writer(dur_path, newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["HashOwner", "HashApp", "HashFunction", "Average", "Count",
             "Minimum", "Maximum"]
            + [f"percentile_Average_{p}" for p in _DURATION_PCTS]
        )
        for spec in trace.functions:
            fam = assignment[spec.function_id]
            count = trace.total_invocations(spec.function_id)
            lo = fam.lowest.warm_service_time_s * 1000.0
            hi = fam.highest.cold_service_time_s * 1000.0
            avg = fam.highest.warm_service_time_s * 1000.0
            pcts = [lo, lo, avg * 0.9, avg, avg * 1.1, hi * 0.95, hi]
            writer.writerow(
                [
                    f"owner{spec.function_id:04d}",
                    f"app{spec.function_id:04d}",
                    spec.name,
                    f"{avg:.2f}",
                    count,
                    f"{lo:.2f}",
                    f"{hi:.2f}",
                ]
                + [f"{p:.2f}" for p in pcts]
            )

    with atomic_writer(mem_path, newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["HashOwner", "HashApp", "SampleCount", "AverageAllocatedMb"]
            + [f"AverageAllocatedMb_pct{p}" for p in _MEMORY_PCTS]
        )
        for spec in trace.functions:
            fam = assignment[spec.function_id]
            lo = fam.lowest.memory_mb
            hi = fam.highest.memory_mb
            avg = sum(v.memory_mb for v in fam) / fam.n_variants
            pcts = [lo, lo, (lo + avg) / 2, avg, (avg + hi) / 2, hi * 0.98,
                    hi * 0.99, hi]
            writer.writerow(
                [
                    f"owner{spec.function_id:04d}",
                    f"app{spec.function_id:04d}",
                    trace.total_invocations(spec.function_id),
                    f"{avg:.2f}",
                ]
                + [f"{p:.2f}" for p in pcts]
            )
    return dur_path, mem_path
