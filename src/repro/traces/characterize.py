"""Per-function workload characterization.

Quantifies the properties the synthetic generator claims to reproduce —
and that the real Azure trace exhibits — so they can be asserted rather
than assumed:

- **burstiness** via the Fano factor of per-minute counts (variance over
  mean; 1 = Poisson, >1 = bursty, <1 = regular/periodic);
- **periodicity** via the peak of the autocorrelation of the binary
  arrival indicator at positive lags (near 1 for timers);
- **day-phase activity** via the fraction of invocations falling inside
  the function's most active 12-hour half-day;
- **inter-arrival dispersion** via the coefficient of variation of gaps;
- **window affinity** — the fraction of inter-arrivals inside the
  keep-alive window, the quantity PULSE's estimator feeds on.

:func:`classify` maps a profile onto a coarse archetype label, which the
test-suite uses to verify the generator produces what each archetype
promises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.analysis import interarrival_times
from repro.traces.schema import MINUTES_PER_DAY, Trace
from repro.utils.validation import check_positive_int

__all__ = [
    "FunctionCharacterization",
    "characterize_function",
    "characterize_trace",
    "classify",
]


@dataclass(frozen=True)
class FunctionCharacterization:
    """Measured invocation-pattern statistics for one function."""

    function_id: int
    name: str
    n_invocations: int
    n_arrival_minutes: int
    fano_factor: float
    periodicity: float  # max autocorrelation over lags 2..120
    dominant_period: int  # lag of that maximum (minutes)
    dayphase_concentration: float  # fraction in the densest half-day
    gap_cv: float
    window_affinity: float  # fraction of gaps <= 10 minutes


def _autocorrelation_peak(
    indicator: np.ndarray, max_lag: int = 120
) -> tuple[float, int]:
    x = indicator - indicator.mean()
    denom = float(x @ x)
    if denom == 0:
        return 0.0, 0
    best, best_lag = 0.0, 0
    for lag in range(2, min(max_lag, len(x) - 1) + 1):
        r = float(x[:-lag] @ x[lag:]) / denom
        if r > best:
            best, best_lag = r, lag
    return best, best_lag


def _dayphase_concentration(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    minute_of_day = np.arange(len(counts)) % MINUTES_PER_DAY
    by_minute = np.bincount(minute_of_day, weights=counts, minlength=MINUTES_PER_DAY)
    half = MINUTES_PER_DAY // 2
    # Best circular 12-hour window.
    doubled = np.concatenate([by_minute, by_minute])
    window_sums = np.convolve(doubled, np.ones(half), mode="valid")[:MINUTES_PER_DAY]
    return float(window_sums.max() / total)


def characterize_function(
    trace: Trace, function_id: int, window: int = 10
) -> FunctionCharacterization:
    """Compute all statistics for one function."""
    check_positive_int("window", window)
    counts = trace.counts_for(function_id).astype(float)
    gaps = interarrival_times(trace, function_id).astype(float)
    mean = counts.mean()
    fano = float(counts.var() / mean) if mean > 0 else 0.0
    indicator = (counts > 0).astype(float)
    periodicity, period = _autocorrelation_peak(indicator)
    gap_cv = float(gaps.std() / gaps.mean()) if len(gaps) and gaps.mean() > 0 else 0.0
    affinity = float(np.mean(gaps <= window)) if len(gaps) else 0.0
    return FunctionCharacterization(
        function_id=function_id,
        name=trace.functions[function_id].name,
        n_invocations=trace.total_invocations(function_id),
        n_arrival_minutes=len(trace.invocation_minutes(function_id)),
        fano_factor=fano,
        periodicity=periodicity,
        dominant_period=period,
        dayphase_concentration=_dayphase_concentration(counts),
        gap_cv=gap_cv,
        window_affinity=affinity,
    )


def characterize_trace(trace: Trace, window: int = 10) -> list[FunctionCharacterization]:
    """Characterize every function of a trace."""
    return [
        characterize_function(trace, fid, window) for fid in range(trace.n_functions)
    ]


def classify(profile: FunctionCharacterization) -> str:
    """Coarse archetype label from a characterization.

    Categories (checked in order): ``inactive``, ``dayphase``,
    ``periodic``, ``bursty``, ``sparse``, ``steady``.
    """
    if profile.n_arrival_minutes < 2:
        return "inactive"
    if profile.dayphase_concentration > 0.95 and profile.n_invocations > 20:
        return "dayphase"
    if profile.periodicity > 0.5 and profile.gap_cv < 0.6:
        return "periodic"
    if profile.fano_factor > 2.0:
        return "bursty"
    if profile.window_affinity < 0.2:
        return "sparse"
    return "steady"
