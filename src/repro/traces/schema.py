"""In-memory trace representation.

A :class:`Trace` is a dense minute-resolution invocation-count matrix for a
set of serverless functions — the same shape as the public Azure Functions
dataset the paper uses (per-minute counts, 1440 columns per day). Minute
resolution is exactly what PULSE consumes: the paper computes inter-arrival
times "in minutes".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import check_positive_int

__all__ = [
    "FunctionSpec",
    "IngestReport",
    "MalformedRowError",
    "RowIssue",
    "Trace",
    "MINUTES_PER_DAY",
]

MINUTES_PER_DAY = 1440


@dataclass(frozen=True)
class RowIssue:
    """One malformed CSV row: where it was and why it was rejected."""

    file: str
    line: int  # 1-based physical line number in the CSV
    function: str  # HashFunction value, "" when the cell itself is broken
    reason: str

    def as_dict(self) -> dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "reason": self.reason,
        }


class MalformedRowError(ValueError):
    """A trace row failed validation under strict ingestion.

    Carries the :class:`RowIssue` so callers (and error messages) name
    the exact file, line and reason instead of a bare parse failure.
    """

    def __init__(self, issue: RowIssue):
        self.issue = issue
        super().__init__(
            f"{issue.file}:{issue.line}: {issue.reason}"
            + (f" (function {issue.function})" if issue.function else "")
        )


@dataclass
class IngestReport:
    """Outcome of one hardened trace load (see ``traces.azure``).

    Filled in-place by :func:`~repro.traces.azure.load_azure_csv`; under
    lenient mode ``issues`` lists every quarantined row and
    ``quarantine_path`` points at the JSONL sidecar. The durable sweep
    layer copies these counts into its manifest.
    """

    mode: str = "strict"
    n_rows: int = 0
    n_ok: int = 0
    n_quarantined: int = 0
    issues: list[RowIssue] = field(default_factory=list)
    quarantine_path: str | None = None

    def record_issue(self, issue: RowIssue) -> None:
        self.n_quarantined += 1
        self.issues.append(issue)

    def as_dict(self) -> dict[str, object]:
        """Manifest-ready summary (issue details live in the sidecar)."""
        return {
            "mode": self.mode,
            "n_rows": self.n_rows,
            "n_ok": self.n_ok,
            "n_quarantined": self.n_quarantined,
            "quarantine_path": self.quarantine_path,
        }


@dataclass(frozen=True)
class FunctionSpec:
    """Static metadata for one serverless function in a trace.

    ``archetype`` records the invocation-pattern class the function was
    generated from (or ``"azure"`` for loaded production functions); it is
    informational only — no policy may read it (that would be an oracle).
    """

    function_id: int
    name: str
    archetype: str = "azure"

    def __post_init__(self) -> None:
        if self.function_id < 0:
            raise ValueError(f"function_id must be >= 0, got {self.function_id}")
        if not self.name:
            raise ValueError("name must be non-empty")


@dataclass(frozen=True)
class Trace:
    """Per-minute invocation counts for ``n_functions`` over ``horizon`` minutes."""

    counts: np.ndarray  # shape (n_functions, horizon), non-negative ints
    functions: tuple[FunctionSpec, ...]
    name: str = "trace"
    _invocation_minutes_cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        counts = np.asarray(self.counts)
        if counts.ndim != 2:
            raise ValueError(f"counts must be 2-D, got shape {counts.shape}")
        if counts.shape[0] != len(self.functions):
            raise ValueError(
                f"counts has {counts.shape[0]} rows but {len(self.functions)} "
                "function specs were given"
            )
        if counts.size and counts.min() < 0:
            raise ValueError("counts must be non-negative")
        if not np.issubdtype(counts.dtype, np.integer):
            if not np.allclose(counts, np.round(counts)):
                raise ValueError("counts must be integral")
            counts = counts.astype(np.int64)
        object.__setattr__(self, "counts", counts)
        ids = [f.function_id for f in self.functions]
        if ids != list(range(len(self.functions))):
            raise ValueError(
                "function_ids must be 0..n-1 in order, got " + repr(ids)
            )

    # -- shape -----------------------------------------------------------
    @property
    def n_functions(self) -> int:
        return self.counts.shape[0]

    @property
    def horizon(self) -> int:
        """Trace length in minutes."""
        return self.counts.shape[1]

    @property
    def n_days(self) -> float:
        return self.horizon / MINUTES_PER_DAY

    # -- access ----------------------------------------------------------
    def counts_for(self, function_id: int) -> np.ndarray:
        """Per-minute counts for one function (a view, do not mutate)."""
        self._check_fid(function_id)
        return self.counts[function_id]

    def invocation_minutes(self, function_id: int) -> np.ndarray:
        """Sorted minutes at which the function has >= 1 invocation."""
        self._check_fid(function_id)
        cached = self._invocation_minutes_cache.get(function_id)
        if cached is None:
            cached = np.flatnonzero(self.counts[function_id])
            self._invocation_minutes_cache[function_id] = cached
        return cached

    def total_per_minute(self) -> np.ndarray:
        """Cumulative invocation count across all functions per minute."""
        return self.counts.sum(axis=0)

    def total_invocations(self, function_id: int | None = None) -> int:
        """Total invocations of one function (or of the whole trace)."""
        if function_id is None:
            return int(self.counts.sum())
        self._check_fid(function_id)
        return int(self.counts[function_id].sum())

    # -- slicing ---------------------------------------------------------
    def window(self, start: int, stop: int, name: str | None = None) -> "Trace":
        """A sub-trace covering minutes ``[start, stop)``."""
        if not (0 <= start < stop <= self.horizon):
            raise ValueError(
                f"invalid window [{start}, {stop}) for horizon {self.horizon}"
            )
        return Trace(
            counts=self.counts[:, start:stop].copy(),
            functions=self.functions,
            name=name or f"{self.name}[{start}:{stop}]",
        )

    def days(self, first_day: int, n_days: int, name: str | None = None) -> "Trace":
        """A sub-trace covering whole days ``[first_day, first_day + n_days)``."""
        check_positive_int("n_days", n_days)
        start = first_day * MINUTES_PER_DAY
        stop = start + n_days * MINUTES_PER_DAY
        return self.window(start, stop, name=name)

    def select_functions(
        self, function_ids: list[int] | np.ndarray, name: str | None = None
    ) -> "Trace":
        """A trace restricted to the given functions (re-indexed from 0)."""
        fids = list(function_ids)
        for fid in fids:
            self._check_fid(fid)
        specs = tuple(
            FunctionSpec(
                function_id=i,
                name=self.functions[fid].name,
                archetype=self.functions[fid].archetype,
            )
            for i, fid in enumerate(fids)
        )
        return Trace(
            counts=self.counts[fids, :].copy(),
            functions=specs,
            name=name or f"{self.name}(subset)",
        )

    def _check_fid(self, function_id: int) -> None:
        if not 0 <= function_id < self.n_functions:
            raise IndexError(
                f"function_id {function_id} out of range "
                f"(trace has {self.n_functions} functions)"
            )

    def __repr__(self) -> str:
        return (
            f"Trace({self.name!r}, functions={self.n_functions}, "
            f"horizon={self.horizon}min, invocations={self.total_invocations()})"
        )
