"""Calibrated synthetic Azure-like trace generator.

The paper drives PULSE with the inter-arrival behaviour of 12
representative functions from the Microsoft Azure Functions production
trace — the same functions previously used by Serverless-in-the-Wild and
IceBreaker. That trace is not redistributable here, so this module
generates traces with the statistical structure PULSE's machinery actually
exercises (see DESIGN.md, substitution table):

- **diverse inter-arrival shapes** within the 10-minute post-invocation
  window (Figure 1): front-loaded, uniform/steady, late-rebound, bimodal,
  periodic;
- **regime drift** for the same function across the first / middle / last
  third of the trace (Figure 2);
- **global invocation peaks** — minutes where many functions spike
  simultaneously, producing the keep-alive memory peaks of §II and
  Figures 4/7 (Tables II & III analyse the two largest);
- **day-phase activity** (diurnal/nocturnal functions) which stresses
  Algorithm 1's prior-keep-alive-memory rules after inactivity.

Every archetype is a renewal/modulated-Poisson process at minute
resolution; generation is fully deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.traces.schema import MINUTES_PER_DAY, FunctionSpec, Trace
from repro.utils.rng import rng_from_seed, spawn_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "ARCHETYPES",
    "FunctionArchetype",
    "SyntheticTraceConfig",
    "generate_function",
    "generate_trace",
]


@dataclass(frozen=True)
class FunctionArchetype:
    """One invocation-pattern class with its parameters."""

    kind: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _GENERATORS:
            raise ValueError(
                f"unknown archetype kind {self.kind!r}; known: {sorted(_GENERATORS)}"
            )


# ---------------------------------------------------------------------------
# per-archetype generators: (rng, horizon, params) -> counts[horizon]
# ---------------------------------------------------------------------------


def _gen_steady(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Homogeneous Poisson arrivals — a flat inter-arrival histogram."""
    rate = p.get("rate", 0.3)
    return rng.poisson(rate, size=horizon)


def _gen_periodic(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Timer-driven function firing every ``period`` minutes with jitter."""
    period = p.get("period", 7)
    jitter = p.get("jitter", 1)
    counts = np.zeros(horizon, dtype=np.int64)
    t = float(rng.integers(0, max(period, 1)))
    while t < horizon:
        m = int(round(t))
        if 0 <= m < horizon:
            counts[m] += 1
        t += period + (rng.integers(-jitter, jitter + 1) if jitter else 0)
        t = max(t, m + 1)  # strictly forward progress
    return counts


def _gen_renewal(
    rng: np.random.Generator,
    horizon: int,
    sample_gap,
    burst_size=lambda rng: 1,
) -> np.ndarray:
    """Generic renewal process; ``sample_gap`` draws inter-arrival minutes."""
    counts = np.zeros(horizon, dtype=np.int64)
    t = int(sample_gap(rng))
    while t < horizon:
        counts[t] += max(1, int(burst_size(rng)))
        gap = max(1, int(sample_gap(rng)))
        t += gap
    return counts


def _gen_bursty(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Bursts of back-to-back invocations separated by heavy-tailed gaps."""
    burst_len = p.get("burst_len", (3, 12))
    burst_rate = p.get("burst_rate", 3.0)
    pareto_scale = p.get("gap_scale", 20.0)
    pareto_alpha = p.get("gap_alpha", 1.5)
    counts = np.zeros(horizon, dtype=np.int64)
    t = int(rng.integers(0, 30))
    while t < horizon:
        length = int(rng.integers(burst_len[0], burst_len[1] + 1))
        for m in range(t, min(t + length, horizon)):
            counts[m] += max(1, rng.poisson(burst_rate))
        gap = int(pareto_scale * (1.0 + rng.pareto(pareto_alpha)))
        t += length + max(1, gap)
    return counts


def _gen_dayphase(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Arrivals only inside a daily active window (diurnal/nocturnal).

    With a ``period`` parameter the function is a scheduled job firing
    every ``period`` minutes while active (the common Azure timer-trigger
    shape); otherwise arrivals are Poisson at ``rate`` within the window.
    """
    rate = p.get("rate", 0.4)
    period = p.get("period")
    start_h = p.get("start_hour", 8)
    end_h = p.get("end_hour", 20)
    minute_of_day = np.arange(horizon) % MINUTES_PER_DAY
    start_m, end_m = start_h * 60, end_h * 60
    if start_m <= end_m:
        active = (minute_of_day >= start_m) & (minute_of_day < end_m)
    else:  # wraps midnight (nocturnal)
        active = (minute_of_day >= start_m) | (minute_of_day < end_m)
    if period is not None:
        counts = np.zeros(horizon, dtype=np.int64)
        phase = int(rng.integers(0, period))
        fire = (np.arange(horizon) + phase) % period == 0
        counts[fire & active] = 1
        return counts
    counts = rng.poisson(rate, size=horizon)
    counts[~active] = 0
    return counts


def _gen_sparse(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """A handful of invocations per day with exponential gaps."""
    mean_gap = p.get("mean_gap", 400.0)
    return _gen_renewal(
        rng, horizon, lambda r: max(1.0, r.exponential(mean_gap))
    )


def _mixture_gap(components: list[tuple[float, float, float]]):
    """Inter-arrival sampler from a mixture of Normal(mu, sd) components,
    each ``(weight, mu, sd)``; a trailing long-tail escape keeps the
    function from firing forever inside the window."""

    weights = np.array([c[0] for c in components])
    weights = weights / weights.sum()

    def sample(rng: np.random.Generator) -> float:
        i = rng.choice(len(components), p=weights)
        _, mu, sd = components[i]
        if mu >= 60.0:  # long-gap component: exponential tail
            return max(1.0, rng.exponential(mu))
        return max(1.0, rng.normal(mu, sd))

    return sample


def _gen_front_loaded(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Re-invocation chains: most follow-ups arrive 1–2 minutes later."""
    return _gen_renewal(
        rng,
        horizon,
        _mixture_gap([(0.75, 1.2, 0.4), (0.10, 4.0, 1.5), (0.15, 90.0, 0.0)]),
    )


def _gen_late_rebound(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Follow-ups concentrated late in the 10-minute window (~9 min)."""
    return _gen_renewal(
        rng,
        horizon,
        _mixture_gap([(0.70, 9.0, 0.4), (0.10, 3.0, 1.0), (0.20, 120.0, 0.0)]),
    )


def _gen_bimodal(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Two re-invocation modes, early (~2 min) and late (~9 min)."""
    return _gen_renewal(
        rng,
        horizon,
        _mixture_gap([(0.40, 2.0, 0.6), (0.40, 9.0, 0.6), (0.20, 150.0, 0.0)]),
    )


def _gen_drifting(rng: np.random.Generator, horizon: int, p: dict) -> np.ndarray:
    """Different inter-arrival regime in each third of the trace (Fig. 2):
    fast periodic -> slow periodic -> bursty."""
    thirds = np.array_split(np.arange(horizon), 3)
    counts = np.zeros(horizon, dtype=np.int64)
    regimes = p.get(
        "regimes",
        [
            FunctionArchetype("periodic", {"period": 2, "jitter": 0}),
            FunctionArchetype("periodic", {"period": 8, "jitter": 0}),
            FunctionArchetype("bursty", {}),
        ],
    )
    if len(regimes) != 3:
        raise ValueError("drifting archetype needs exactly 3 regimes")
    for seg, regime in zip(thirds, regimes):
        sub = _GENERATORS[regime.kind](rng, len(seg), regime.params)
        counts[seg] = sub
    return counts


_GENERATORS = {
    "steady": _gen_steady,
    "periodic": _gen_periodic,
    "bursty": _gen_bursty,
    "diurnal": lambda rng, h, p: _gen_dayphase(
        rng, h, {"start_hour": 8, "end_hour": 20, **p}
    ),
    "nocturnal": lambda rng, h, p: _gen_dayphase(
        rng, h, {"start_hour": 22, "end_hour": 6, **p}
    ),
    "sparse": _gen_sparse,
    "front_loaded": _gen_front_loaded,
    "late_rebound": _gen_late_rebound,
    "bimodal": _gen_bimodal,
    "drifting": _gen_drifting,
}

ARCHETYPES = tuple(sorted(_GENERATORS))


def generate_function(
    archetype: FunctionArchetype,
    horizon: int,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Generate one function's per-minute counts for a given archetype."""
    check_positive_int("horizon", horizon)
    rng = rng_from_seed(seed)
    return _GENERATORS[archetype.kind](rng, horizon, dict(archetype.params))


# ---------------------------------------------------------------------------
# full-trace generation
# ---------------------------------------------------------------------------

#: The default 12-function mix: one of each distinctive shape plus extra
#: timer-like periodic functions, mirroring the diversity of the 12 Azure
#: functions the paper inherits from Wild and IceBreaker. The weight on
#: exact timers reflects the Azure trace's published composition (timer
#: triggers dominate, and they are near-deterministic at minute
#: resolution).
DEFAULT_FUNCTION_MIX: tuple[FunctionArchetype, ...] = (
    FunctionArchetype("periodic", {"period": 5, "jitter": 0}),
    FunctionArchetype("periodic", {"period": 7, "jitter": 1}),
    FunctionArchetype("bursty", {}),
    FunctionArchetype("diurnal", {"period": 4}),
    FunctionArchetype("nocturnal", {"period": 6}),
    FunctionArchetype("drifting", {}),
    FunctionArchetype("sparse", {"mean_gap": 420.0}),
    FunctionArchetype("front_loaded", {}),
    FunctionArchetype("late_rebound", {}),
    FunctionArchetype("bimodal", {}),
    FunctionArchetype("periodic", {"period": 3, "jitter": 0}),
    FunctionArchetype("steady", {"rate": 0.25}),
)


@dataclass(frozen=True)
class SyntheticTraceConfig:
    """Parameters of the synthetic Azure-like trace.

    ``peak_minutes=None`` places ``n_peaks`` global spikes at deterministic
    evenly-spread offsets; pass explicit minutes to control them.

    ``n_functions`` scales the trace to a fleet: the ``functions`` mix is
    replicated cyclically to that many functions, preserving the archetype
    *proportions* of the 12-representative slice while giving every
    function its own seeded arrival stream (each fid spawns an
    independent child RNG, so fleets of any size stay deterministic).
    ``None`` (default) keeps exactly the configured mix.
    """

    horizon_minutes: int = 14 * MINUTES_PER_DAY
    functions: tuple[FunctionArchetype, ...] = DEFAULT_FUNCTION_MIX
    n_peaks: int = 6
    peak_minutes: tuple[int, ...] | None = None
    peak_width: int = 3
    peak_intensity: float = 6.0
    peak_participation: float = 0.85
    seed: int = 2024
    n_functions: int | None = None

    def __post_init__(self) -> None:
        check_positive_int("horizon_minutes", self.horizon_minutes)
        if not self.functions:
            raise ValueError("at least one function archetype is required")
        if self.n_functions is not None:
            check_positive_int("n_functions", self.n_functions)
            mix = self.functions
            object.__setattr__(
                self,
                "functions",
                tuple(mix[i % len(mix)] for i in range(self.n_functions)),
            )
        if self.n_peaks < 0:
            raise ValueError("n_peaks must be >= 0")
        check_positive_int("peak_width", self.peak_width)
        if not 0.0 <= self.peak_participation <= 1.0:
            raise ValueError("peak_participation must be in [0, 1]")

    def with_horizon(self, horizon_minutes: int) -> "SyntheticTraceConfig":
        """A copy with a different horizon (benches use short horizons)."""
        return replace(self, horizon_minutes=horizon_minutes)


def _default_peak_minutes(cfg: SyntheticTraceConfig) -> tuple[int, ...]:
    if cfg.n_peaks == 0:
        return ()
    # Spread peaks across the horizon, away from the very edges so the
    # 10-minute post-peak windows of Tables II/III are fully in range.
    span = cfg.horizon_minutes
    offsets = np.linspace(0.12, 0.88, cfg.n_peaks)
    return tuple(int(span * o) for o in offsets)


def generate_trace(config: SyntheticTraceConfig | None = None) -> Trace:
    """Generate the full synthetic trace described by ``config``."""
    cfg = config or SyntheticTraceConfig()
    parent = rng_from_seed(cfg.seed)
    n = len(cfg.functions)
    counts = np.zeros((n, cfg.horizon_minutes), dtype=np.int64)
    specs = []
    for fid, arch in enumerate(cfg.functions):
        rng = spawn_rng(parent, fid)
        counts[fid] = generate_function(arch, cfg.horizon_minutes, rng)
        specs.append(
            FunctionSpec(
                function_id=fid, name=f"fn{fid:02d}-{arch.kind}", archetype=arch.kind
            )
        )

    # Global peaks: simultaneous spikes across most functions.
    peak_rng = spawn_rng(parent, n + 1)
    peaks = (
        cfg.peak_minutes if cfg.peak_minutes is not None else _default_peak_minutes(cfg)
    )
    for pm in peaks:
        if not 0 <= pm < cfg.horizon_minutes:
            raise ValueError(
                f"peak minute {pm} outside horizon {cfg.horizon_minutes}"
            )
        for fid in range(n):
            if peak_rng.random() > cfg.peak_participation:
                continue
            for dm in range(cfg.peak_width):
                m = pm + dm
                if m < cfg.horizon_minutes:
                    counts[fid, m] += max(1, peak_rng.poisson(cfg.peak_intensity))

    return Trace(counts=counts, functions=tuple(specs), name="synthetic-azure")
