"""Shared utilities: deterministic RNG plumbing, validation, ASCII rendering."""

from repro.utils.rng import spawn_rng, rng_from_seed
from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
    "rng_from_seed",
    "spawn_rng",
]
