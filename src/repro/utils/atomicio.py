"""Atomic, crash-safe artifact writes.

Every artifact this repository emits — experiment reports, SVG figures,
JSONL decision traces, bench JSON, sweep manifests, engine checkpoints —
goes through one of these helpers. The contract: a reader never observes
a torn or partial file. Either the previous content is intact or the new
content is complete; a SIGKILL (or power cut) mid-write leaves at most a
stray ``*.tmp-*`` sibling, never a corrupt artifact.

Mechanism: write to a temporary file in the *same directory* (so the
rename cannot cross filesystems), flush, ``fsync``, then ``os.replace``
— POSIX guarantees the replace is atomic. Directory entries are not
fsynced (crash-safety of the *name* is the platform's problem; content
integrity is ours).

``fsync`` costs a few hundred microseconds per file; callers writing
many small throwaway files inside a managed directory can pass
``durable=False`` to skip it and keep only the atomicity guarantee.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any

__all__ = [
    "DurableAppender",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "atomic_writer",
    "canonical_json",
    "sha256_bytes",
    "sha256_file",
]


@contextmanager
def atomic_writer(
    path: str | Path,
    mode: str = "w",
    encoding: str | None = "utf-8",
    durable: bool = True,
    newline: str | None = None,
) -> Iterator[IO[Any]]:
    """Context manager yielding a handle whose content replaces ``path``
    atomically on clean exit (and is discarded on error).

    ``mode`` must be a write mode (``"w"`` or ``"wb"``); parent
    directories are created. On any exception inside the block the
    temporary file is removed and ``path`` is left untouched.
    """
    if mode not in ("w", "wb"):
        raise ValueError(f"atomic_writer mode must be 'w' or 'wb', got {mode!r}")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".tmp-"
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(
            fd,
            mode,
            encoding=encoding if "b" not in mode else None,
            newline=newline if "b" not in mode else None,
        ) as fh:
            yield fh
            fh.flush()
            if durable:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(
    path: str | Path,
    text: str,
    encoding: str = "utf-8",
    durable: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    path = Path(path)
    with atomic_writer(path, "w", encoding=encoding, durable=durable) as fh:
        fh.write(text)
    return path


def atomic_write_bytes(
    path: str | Path, data: bytes, durable: bool = True
) -> Path:
    """Atomically replace ``path`` with ``data``; returns the path."""
    path = Path(path)
    with atomic_writer(path, "wb", durable=durable) as fh:
        fh.write(data)
    return path


def atomic_write_json(
    path: str | Path,
    obj: Any,
    indent: int | None = 2,
    sort_keys: bool = True,
    durable: bool = True,
) -> Path:
    """Atomically write ``obj`` as canonical JSON (sorted keys, trailing
    newline) so identical payloads are byte-identical files."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text, durable=durable)


def canonical_json(obj: Any) -> str:
    """One-line canonical JSON (sorted keys, minimal separators, no
    trailing newline) — the byte-stable record form journals and
    content hashes use: identical payloads are identical strings."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class DurableAppender:
    """Append-only record log: the write-ahead-journal primitive.

    Unlike the ``atomic_write_*`` helpers (which replace a whole file),
    an appender grows one file a record at a time. Each
    :meth:`append_line` flushes the record to the OS before returning,
    so a SIGKILL of *this process* never loses an acknowledged record —
    kernel buffers survive process death. Durability against power loss
    is batched: :meth:`sync` fsyncs, and callers invoke it at their
    compaction/shutdown boundaries rather than per record (an fsync per
    record would dominate a sub-millisecond append path).

    A record is one line; a crash mid-append leaves at most one torn
    final line, which readers detect as unparseable JSON and discard.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[bytes] | None = open(self.path, "ab")

    def append_line(self, text: str) -> None:
        """Append ``text`` as one record line, flushed to the kernel."""
        if self._fh is None:
            raise ValueError(f"appender for {self.path} is closed")
        self._fh.write(text.encode("utf-8") + b"\n")
        self._fh.flush()

    def sync(self) -> None:
        """fsync the log — full durability up to the last append."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def close(self, *, sync: bool = True) -> None:
        """Close the handle (idempotent), fsyncing first by default."""
        if self._fh is None:
            return
        if sync:
            self.sync()
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "DurableAppender":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def sha256_bytes(data: bytes) -> str:
    """Hex SHA-256 of a byte string (content-hash helper for manifests)."""
    return hashlib.sha256(data).hexdigest()


def sha256_file(path: str | Path) -> str:
    """Hex SHA-256 of a file's content, streamed in 1 MiB chunks."""
    h = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()
