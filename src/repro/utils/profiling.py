"""Wall-clock measurement helpers for the perf benchmark harness.

Single-shot timings of a ~10-50 ms simulation run are dominated by
scheduler and allocator noise (observed spread on the same code: ~2x).
The helpers here implement the methodology the perf bench documents:

- **best-of-N** (the min over repeats) estimates the noise-free cost —
  noise on a wall clock is strictly additive, so the minimum is the
  least-contaminated observation (the ``timeit`` rationale);
- **interleaving** the contenders (A B A B ...) instead of timing all
  of A then all of B spreads slow drift (thermal, frequency scaling,
  background load) evenly across both;
- the garbage collector is suspended around each sample so collection
  pauses land between, not inside, measurements.
"""

from __future__ import annotations

import gc
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from statistics import median

__all__ = ["Timing", "time_call", "interleaved_best_of"]


@dataclass(frozen=True)
class Timing:
    """Summary of repeated wall-clock samples for one callable (seconds)."""

    samples: tuple[float, ...]

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def median(self) -> float:
        return median(self.samples)

    def as_dict(self) -> dict[str, float | int]:
        return {
            "best_s": self.best,
            "median_s": self.median,
            "n_samples": len(self.samples),
        }


def time_call(fn: Callable[[], object]) -> float:
    """One wall-clock sample of ``fn`` with the GC suspended around it."""
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0
    finally:
        if was_enabled:
            gc.enable()


def interleaved_best_of(
    fns: Sequence[Callable[[], object]],
    repeats: int = 5,
    warmup: int = 1,
) -> list[Timing]:
    """Time the callables round-robin (A B ... A B ...), ``repeats`` samples
    each after ``warmup`` unmeasured rounds. Returns one :class:`Timing`
    per callable, in input order."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    for _ in range(warmup):
        for fn in fns:
            fn()
    samples: list[list[float]] = [[] for _ in fns]
    for _ in range(repeats):
        for i, fn in enumerate(fns):
            samples[i].append(time_call(fn))
    return [Timing(tuple(s)) for s in samples]
