"""Deterministic random-number plumbing.

Every stochastic component in the repository draws from a
:class:`numpy.random.Generator` that is derived from an explicit integer
seed.  Experiments that perform many runs (the paper uses 1000 runs with
different model-to-function assignments) derive one child generator per run
through :func:`spawn_rng`, so results are reproducible and each run is
statistically independent.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rng_from_seed", "spawn_rng"]


def rng_from_seed(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a Generator for ``seed``.

    Accepts an existing Generator (returned unchanged) so APIs can take
    ``seed: int | Generator | None`` uniformly. ``None`` yields a
    deterministic default (seed 0): this library never uses OS entropy, so
    two identical invocations always produce identical outputs.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = 0
    return np.random.default_rng(seed)


def spawn_rng(parent: np.random.Generator, index: int) -> np.random.Generator:
    """Derive the ``index``-th independent child generator from ``parent``.

    Uses the SeedSequence spawning protocol, which guarantees streams that
    do not overlap regardless of how many draws each child makes.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    ss = parent.bit_generator.seed_seq  # type: ignore[attr-defined]
    # spawn() mutates the parent's spawn counter; to make child `index`
    # reproducible independent of call order we construct a fresh
    # SeedSequence keyed on the parent's entropy and the index.
    child = np.random.SeedSequence(
        entropy=ss.entropy, spawn_key=tuple(ss.spawn_key) + (index,)
    )
    return np.random.default_rng(child)
