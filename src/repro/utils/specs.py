"""Shared parsing for compact CLI specs, with real error messages.

The CLI takes several mini-languages on the command line — ``FID:MINUTE``
coordinates for ``repro inspect`` queries and ``key=value,key=value``
bundles for ``--faults`` — and every flag used to hand-roll its own
parser. This module is the single implementation: helpful messages
(expected shape, the offending token, the known keys) and one error type.

:class:`SpecError` subclasses :class:`SystemExit`, so an unhandled parse
failure exits the CLI with the message on stderr (the historical
behaviour of ``repro inspect``), while library callers and tests can
still catch it like any exception.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from pathlib import Path

__all__ = [
    "ENGINES",
    "SpecError",
    "parse_choice_list",
    "parse_engine",
    "parse_fid_minute",
    "parse_float_list",
    "parse_kv_spec",
    "parse_optional_int",
    "parse_scoped_fid_minute",
    "resolve_paths",
]


class SpecError(SystemExit):
    """A malformed CLI spec. Exits the CLI; catchable by libraries."""


#: The engine vocabulary, in documentation order. Every surface that
#: takes an engine selector — ``repro simulate --engine``, the
#: :func:`repro.api.simulate` facade, ``ExperimentConfig``, the durable
#: sweep manifest, ``repro.serve`` sessions — shares this tuple, so the
#: spelling cannot drift between layers.
ENGINES = ("auto", "reference", "fast", "fleet")


def parse_engine(value: str, flag: str = "engine") -> str:
    """Validate and canonicalize an engine selector.

    Accepts any case, returns the lowercase canonical name. Raises
    :class:`ValueError` — not :class:`SpecError` — so it composes with
    argparse ``type=`` callables and with library-level config
    validation (``ExperimentConfig``) that promises ``ValueError`` on
    bad input; CLI surfaces get argparse's usage message for free.
    """
    if not isinstance(value, str):
        raise ValueError(
            f"{flag} must be a string, got {value!r}; "
            f"choose one of: {', '.join(ENGINES)}"
        )
    canonical = value.strip().lower()
    if canonical not in ENGINES:
        raise ValueError(
            f"unknown engine {value!r} for {flag}; "
            f"choose one of: {', '.join(ENGINES)}"
        )
    return canonical


def parse_fid_minute(spec: str, flag: str) -> tuple[int, int]:
    """Parse a ``FID:MINUTE`` coordinate (e.g. ``3:120``)."""
    fid_s, sep, minute_s = spec.partition(":")
    if not sep:
        raise SpecError(
            f"{flag} expects FID:MINUTE (e.g. 3:120), got {spec!r} — missing ':'"
        )
    try:
        return int(fid_s), int(minute_s)
    except ValueError:
        raise SpecError(
            f"{flag} expects FID:MINUTE with integer parts (e.g. 3:120), "
            f"got {spec!r}"
        ) from None


def parse_scoped_fid_minute(
    spec: str, flag: str
) -> tuple[int | None, int | None]:
    """Parse an optionally-scoped coordinate: ``''`` (everything),
    ``FID`` (one function) or ``FID:MINUTE`` (one cell).

    Used by the ``repro inspect`` scope flags (``--downgrades`` takes all
    three shapes); returns ``(fid, minute)`` with ``None`` for the
    unspecified parts.
    """
    spec = spec.strip()
    if not spec:
        return None, None
    if ":" in spec:
        return parse_fid_minute(spec, flag)
    try:
        return int(spec), None
    except ValueError:
        raise SpecError(
            f"{flag} expects FID or FID:MINUTE (e.g. 3 or 3:120), got {spec!r}"
        ) from None


def parse_optional_int(spec: str, flag: str) -> int | None:
    """Parse an optional integer scope (``''`` means unscoped)."""
    spec = spec.strip()
    if not spec:
        return None
    try:
        return int(spec)
    except ValueError:
        raise SpecError(
            f"{flag} expects an integer (or nothing), got {spec!r}"
        ) from None


def parse_choice_list(
    values: Iterable[str], flag: str, choices: Sequence[str]
) -> list[str]:
    """Normalize repeated/comma-separated choice flags against a fixed
    vocabulary (e.g. ``--rule RPR001 --rule rpr002,RPR005``).

    Matching is case-insensitive against upper-case ``choices``; the
    result is de-duplicated, original order preserved.
    """
    out: list[str] = []
    for value in values:
        for token in value.split(","):
            token = token.strip().upper()
            if not token:
                continue
            if token not in choices:
                raise SpecError(
                    f"{flag}: unknown choice {token!r} "
                    f"(known: {', '.join(choices)})"
                )
            if token not in out:
                out.append(token)
    if not out:
        raise SpecError(f"{flag} expects at least one choice, got none")
    return out


def resolve_paths(
    raw: Sequence[str], flag: str, default: Path | None = None
) -> list[Path]:
    """Turn CLI path operands into existing :class:`~pathlib.Path`\\ s.

    With no operands, returns ``[default]`` (the caller's notion of "the
    whole tree"). A nonexistent operand is a :class:`SpecError` — the
    historical behaviour was a bare traceback from deep inside the
    consumer.
    """
    if not raw:
        if default is None:
            raise SpecError(f"{flag} expects at least one path")
        return [default]
    out: list[Path] = []
    for token in raw:
        path = Path(token)
        if not path.exists():
            raise SpecError(f"{flag}: path {token!r} does not exist")
        out.append(path)
    return out


def parse_float_list(spec: str, flag: str) -> list[float]:
    """Parse a comma-separated list of floats (e.g. ``0,0.05,0.1``)."""
    out: list[float] = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        try:
            out.append(float(token))
        except ValueError:
            raise SpecError(
                f"{flag} expects comma-separated numbers (e.g. 0,0.05,0.1), "
                f"got {token!r}"
            ) from None
    if not out:
        raise SpecError(f"{flag} expects at least one number, got {spec!r}")
    return out


def parse_kv_spec(
    spec: str,
    flag: str,
    fields: Mapping[str, tuple[str, Callable[[str], object]]],
) -> dict[str, object]:
    """Parse ``key=value,key=value`` against a schema.

    ``fields`` maps each accepted spec key to ``(attribute_name, cast)``;
    the returned dict is keyed by attribute name, ready to splat into a
    dataclass constructor. Unknown keys, missing ``=`` and uncastable
    values all raise :class:`SpecError` naming the known keys.
    """
    known = ", ".join(sorted(fields))
    out: dict[str, object] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, raw = part.partition("=")
        key, raw = key.strip(), raw.strip()
        if not sep:
            raise SpecError(
                f"{flag} expects KEY=VALUE pairs, got {part!r} "
                f"(known keys: {known})"
            )
        if key not in fields:
            raise SpecError(
                f"{flag}: unknown key {key!r} (known keys: {known})"
            )
        attr, cast = fields[key]
        try:
            out[attr] = cast(raw)
        except (TypeError, ValueError):
            raise SpecError(
                f"{flag}: {key} expects a {cast.__name__} value, got {raw!r}"
            ) from None
    return out
