"""Summary statistics for multi-run experiments.

The paper averages 1000 simulation runs; any honest reproduction should
also report run-to-run spread. These helpers compute mean, standard
deviation and a normal-approximation confidence interval, plus an ASCII
histogram used by the distribution figures (Figure 9a is a histogram
over simulation runs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

from repro.utils.validation import check_fraction, check_positive_int

__all__ = ["SummaryStats", "ascii_histogram", "summarize"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean with spread for one metric across runs."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4g} ± {self.std:.2g} "
            f"(95% CI [{self.ci_low:.4g}, {self.ci_high:.4g}], n={self.n})"
        )


def summarize(values, confidence: float = 0.95) -> SummaryStats:
    """Mean/std and a t-interval for the mean of ``values``."""
    check_fraction("confidence", confidence, inclusive=False)
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(x.mean())
    if x.size == 1:
        return SummaryStats(1, mean, 0.0, mean, mean, mean, mean)
    std = float(x.std(ddof=1))
    sem = std / np.sqrt(x.size)
    tval = float(sps.t.ppf(0.5 + confidence / 2.0, df=x.size - 1))
    return SummaryStats(
        n=int(x.size),
        mean=mean,
        std=std,
        ci_low=mean - tval * sem,
        ci_high=mean + tval * sem,
        minimum=float(x.min()),
        maximum=float(x.max()),
    )


def ascii_histogram(
    values,
    bins: int = 10,
    width: int = 40,
    log_bins: bool = False,
) -> str:
    """Render a histogram of ``values`` as text rows.

    ``log_bins`` uses logarithmically spaced bins (Figure 9a's overhead
    ratios span orders of magnitude).
    """
    check_positive_int("bins", bins)
    x = np.asarray(list(values), dtype=float)
    if x.size == 0:
        return "(no samples)"
    lo, hi = float(x.min()), float(x.max())
    if lo == hi:
        return f"[{lo:.3g}] {'#' * width} ({x.size})"
    if log_bins:
        if lo <= 0:
            raise ValueError("log_bins requires strictly positive values")
        edges = np.logspace(np.log10(lo), np.log10(hi), bins + 1)
    else:
        edges = np.linspace(lo, hi, bins + 1)
    counts, _ = np.histogram(x, bins=edges)
    peak = counts.max() or 1
    lines = []
    for i, c in enumerate(counts):
        bar = "#" * int(round(c / peak * width))
        lines.append(f"[{edges[i]:10.3g}, {edges[i + 1]:10.3g})  {c:6d}  {bar}")
    return "\n".join(lines)
