"""Minimal dependency-free SVG charts.

The offline environment has no matplotlib, but the paper's figures are
simple line series, scatter points and bar groups — all easy to emit as
standalone SVG. This module implements exactly the three chart types the
reproduction needs:

- :func:`line_chart` — one or more (x, y) series (memory over time,
  cost-error over time);
- :func:`bar_chart` — labeled (possibly negative) values (the
  %-improvement figures);
- :func:`scatter_chart` — labeled points (the cost/accuracy trade-off).

Output is deliberately plain: a white canvas, axes with tick labels, a
small legend. Everything returns an SVG string;
:func:`save` writes it to disk.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from repro.utils.atomicio import atomic_write_text

__all__ = ["bar_chart", "line_chart", "save", "scatter_chart"]

_COLORS = ("#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b")
_W, _H = 640, 400
_MARGIN = dict(left=70, right=20, top=40, bottom=50)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def _ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    if hi == lo:
        return [lo]
    raw = np.linspace(lo, hi, n)
    return [float(v) for v in raw]


class _Canvas:
    """Shared plot scaffolding: frame, scales, axes, legend."""

    def __init__(self, title: str, xlabel: str, ylabel: str):
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{_W}" '
            f'height="{_H}" viewBox="0 0 {_W} {_H}">',
            f'<rect width="{_W}" height="{_H}" fill="white"/>',
            f'<text x="{_W / 2}" y="22" text-anchor="middle" '
            f'font-size="15" font-family="sans-serif">{_escape(title)}</text>',
            f'<text x="{_W / 2}" y="{_H - 8}" text-anchor="middle" '
            f'font-size="12" font-family="sans-serif">{_escape(xlabel)}</text>',
            f'<text x="16" y="{_H / 2}" text-anchor="middle" font-size="12" '
            f'font-family="sans-serif" transform="rotate(-90 16 {_H / 2})">'
            f"{_escape(ylabel)}</text>",
        ]
        self.x0 = _MARGIN["left"]
        self.x1 = _W - _MARGIN["right"]
        self.y0 = _H - _MARGIN["bottom"]
        self.y1 = _MARGIN["top"]

    def set_scales(self, xlo, xhi, ylo, yhi):
        self.xlo, self.xhi = float(xlo), float(xhi)
        self.ylo, self.yhi = float(ylo), float(yhi)
        if self.xhi == self.xlo:
            self.xhi += 1.0
        if self.yhi == self.ylo:
            self.yhi += 1.0

    def sx(self, x: float) -> float:
        return self.x0 + (x - self.xlo) / (self.xhi - self.xlo) * (self.x1 - self.x0)

    def sy(self, y: float) -> float:
        return self.y0 - (y - self.ylo) / (self.yhi - self.ylo) * (self.y0 - self.y1)

    def axes(self, x_tick_labels: Sequence[tuple[float, str]] | None = None):
        p = self.parts
        p.append(
            f'<line x1="{self.x0}" y1="{self.y0}" x2="{self.x1}" y2="{self.y0}" '
            'stroke="black"/>'
        )
        p.append(
            f'<line x1="{self.x0}" y1="{self.y0}" x2="{self.x0}" y2="{self.y1}" '
            'stroke="black"/>'
        )
        for v in _ticks(self.ylo, self.yhi):
            y = self.sy(v)
            p.append(
                f'<line x1="{self.x0 - 4}" y1="{y:.1f}" x2="{self.x0}" '
                f'y2="{y:.1f}" stroke="black"/>'
            )
            p.append(
                f'<text x="{self.x0 - 8}" y="{y + 4:.1f}" text-anchor="end" '
                f'font-size="10" font-family="sans-serif">{v:.3g}</text>'
            )
        if x_tick_labels is None:
            x_tick_labels = [(v, f"{v:.3g}") for v in _ticks(self.xlo, self.xhi)]
        for v, label in x_tick_labels:
            x = self.sx(v)
            p.append(
                f'<line x1="{x:.1f}" y1="{self.y0}" x2="{x:.1f}" '
                f'y2="{self.y0 + 4}" stroke="black"/>'
            )
            p.append(
                f'<text x="{x:.1f}" y="{self.y0 + 16}" text-anchor="middle" '
                f'font-size="10" font-family="sans-serif">{_escape(label)}</text>'
            )

    def legend(self, labels: Sequence[str]):
        for i, label in enumerate(labels):
            x = self.x0 + 10
            y = self.y1 + 14 * i + 4
            color = _COLORS[i % len(_COLORS)]
            self.parts.append(
                f'<rect x="{x}" y="{y - 8}" width="10" height="10" fill="{color}"/>'
            )
            self.parts.append(
                f'<text x="{x + 15}" y="{y}" font-size="11" '
                f'font-family="sans-serif">{_escape(label)}</text>'
            )

    def render(self) -> str:
        return "\n".join(self.parts + ["</svg>"])


def line_chart(
    series: Mapping[str, Sequence[float] | np.ndarray],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
    max_points: int = 800,
) -> str:
    """One polyline per named series; long series are bucket-averaged."""
    if not series:
        raise ValueError("need at least one series")
    prepared: dict[str, np.ndarray] = {}
    for name, values in series.items():
        y = np.asarray(values, dtype=float)
        if y.size == 0:
            raise ValueError(f"series {name!r} is empty")
        if y.size > max_points:
            edges = np.linspace(0, y.size, max_points + 1).astype(int)
            y = np.array([y[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
        prepared[name] = y
    ylo = min(float(y.min()) for y in prepared.values())
    yhi = max(float(y.max()) for y in prepared.values())
    xhi = max(len(y) for y in prepared.values()) - 1
    canvas = _Canvas(title, xlabel, ylabel)
    canvas.set_scales(0, max(xhi, 1), min(ylo, 0), yhi)
    canvas.axes()
    for i, (name, y) in enumerate(prepared.items()):
        pts = " ".join(
            f"{canvas.sx(j):.1f},{canvas.sy(v):.1f}" for j, v in enumerate(y)
        )
        canvas.parts.append(
            f'<polyline points="{pts}" fill="none" '
            f'stroke="{_COLORS[i % len(_COLORS)]}" stroke-width="1.5"/>'
        )
    canvas.legend(list(prepared))
    return canvas.render()


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    ylabel: str = "",
) -> str:
    """Vertical bars; negative values hang below the zero line."""
    if not values:
        raise ValueError("need at least one bar")
    labels = list(values)
    vals = np.array([values[k] for k in labels], dtype=float)
    canvas = _Canvas(title, "", ylabel)
    ylo = min(0.0, float(vals.min()) * 1.1)
    yhi = max(0.0, float(vals.max()) * 1.1) or 1.0
    canvas.set_scales(0, len(labels), ylo, yhi)
    canvas.axes(
        x_tick_labels=[(i + 0.5, label) for i, label in enumerate(labels)]
    )
    zero_y = canvas.sy(0.0)
    canvas.parts.append(
        f'<line x1="{canvas.x0}" y1="{zero_y:.1f}" x2="{canvas.x1}" '
        f'y2="{zero_y:.1f}" stroke="#999" stroke-dasharray="3,3"/>'
    )
    width = (canvas.x1 - canvas.x0) / len(labels)
    for i, v in enumerate(vals):
        x = canvas.sx(i) + width * 0.15
        top = canvas.sy(max(v, 0.0))
        bottom = canvas.sy(min(v, 0.0))
        canvas.parts.append(
            f'<rect x="{x:.1f}" y="{top:.1f}" width="{width * 0.7:.1f}" '
            f'height="{max(bottom - top, 0.5):.1f}" '
            f'fill="{_COLORS[i % len(_COLORS)]}"/>'
        )
        canvas.parts.append(
            f'<text x="{canvas.sx(i + 0.5):.1f}" '
            f'y="{(top if v >= 0 else bottom) - 4:.1f}" text-anchor="middle" '
            f'font-size="10" font-family="sans-serif">{v:+.1f}</text>'
        )
    return canvas.render()


def scatter_chart(
    points: Mapping[str, tuple[float, float]],
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Labeled points in the (x, y) plane."""
    if not points:
        raise ValueError("need at least one point")
    xs = np.array([p[0] for p in points.values()], dtype=float)
    ys = np.array([p[1] for p in points.values()], dtype=float)
    pad_x = (xs.max() - xs.min()) * 0.15 or 1.0
    pad_y = (ys.max() - ys.min()) * 0.15 or 1.0
    canvas = _Canvas(title, xlabel, ylabel)
    canvas.set_scales(xs.min() - pad_x, xs.max() + pad_x,
                      ys.min() - pad_y, ys.max() + pad_y)
    canvas.axes()
    for i, (label, (x, y)) in enumerate(points.items()):
        cx, cy = canvas.sx(x), canvas.sy(y)
        canvas.parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="5" '
            f'fill="{_COLORS[i % len(_COLORS)]}"/>'
        )
        canvas.parts.append(
            f'<text x="{cx + 8:.1f}" y="{cy - 6:.1f}" font-size="11" '
            f'font-family="sans-serif">{_escape(label)}</text>'
        )
    return canvas.render()


def save(svg: str, path: str | Path) -> Path:
    """Write an SVG string to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(path, svg)
