"""Small argument-validation helpers used across the package.

These raise ``ValueError`` with consistent messages; keeping them in one
place makes the checks cheap to write at every public entry point.
"""

from __future__ import annotations

__all__ = [
    "check_fraction",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
]


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return value


def check_positive_int(name: str, value: int) -> int:
    """Require an integral ``value > 0``."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ValueError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be a positive int, got {value!r}")
    return value


def check_fraction(name: str, value: float, *, inclusive: bool = True) -> float:
    """Require ``value`` in [0, 1] (or (0, 1) when ``inclusive=False``)."""
    if inclusive:
        if not (0.0 <= value <= 1.0):
            raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    else:
        if not (0.0 < value < 1.0):
            raise ValueError(f"{name} must be in (0, 1), got {value!r}")
    return value
