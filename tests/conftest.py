"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.assignments import sample_assignment
from repro.models.zoo import default_zoo
from repro.traces.schema import FunctionSpec, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="session")
def zoo():
    return default_zoo()


@pytest.fixture(scope="session")
def gpt(zoo):
    return zoo.family("GPT")


@pytest.fixture(scope="session")
def bert(zoo):
    return zoo.family("BERT")


@pytest.fixture(scope="session")
def small_trace() -> Trace:
    """A fast 12-function trace (12 hours) for integration tests."""
    return generate_trace(SyntheticTraceConfig(horizon_minutes=720, seed=42))


@pytest.fixture(scope="session")
def tiny_trace() -> Trace:
    """A hand-written 3-function trace with known invocation minutes."""
    counts = np.zeros((3, 60), dtype=np.int64)
    counts[0, [5, 10, 15, 20, 25, 30, 35, 40, 45, 50]] = 1  # strict 5-min timer
    counts[1, [3, 4, 5, 30, 31, 32]] = 2  # two bursts
    counts[2, 48] = 1  # a single late invocation
    specs = (
        FunctionSpec(0, "timer", "periodic"),
        FunctionSpec(1, "bursty", "bursty"),
        FunctionSpec(2, "oneshot", "sparse"),
    )
    return Trace(counts=counts, functions=specs, name="tiny")


@pytest.fixture()
def assignment(small_trace, zoo):
    return sample_assignment(small_trace.n_functions, zoo, seed=1)


@pytest.fixture()
def tiny_assignment(tiny_trace, zoo):
    fams = list(zoo)
    return {fid: fams[fid % len(fams)] for fid in range(tiny_trace.n_functions)}
