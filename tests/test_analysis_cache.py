"""The incremental lint cache: correctness before speed."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import LintCache, lint_paths, render_json

CLEAN = """\
def f():
    return 1
"""

DIRTY_RUNTIME = """\
import random

def f():
    return random.random()
"""


def write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def make_tree(tmp_path: Path) -> list[Path]:
    """Three cacheable files, one of them with a real finding."""
    return [
        write(tmp_path, "pkg/a.py", CLEAN),
        write(tmp_path, "pkg/b.py", CLEAN),
        write(tmp_path, "runtime/c.py", DIRTY_RUNTIME),
    ]


class TestWarmRun:
    def test_second_run_is_all_hits_and_byte_identical(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = LintCache(tmp_path / "cache")

        cold = lint_paths(paths, cache=cache)
        assert cache.hits == 0
        assert cache.misses == len(paths)

        warm = lint_paths(paths, cache=cache)
        assert cache.hits == len(paths)
        assert cache.misses == 0
        assert render_json(warm) == render_json(cold)
        # The run found something — identical reports are not
        # vacuously identical empty ones.
        assert warm.findings

    def test_parse_error_is_cached_and_survives_warm(self, tmp_path):
        paths = [write(tmp_path, "pkg/broken.py", "def f(:\n")]
        cache = LintCache(tmp_path / "cache")
        cold = lint_paths(paths, cache=cache)
        warm = lint_paths(paths, cache=cache)
        assert cache.hits == 1
        assert render_json(warm) == render_json(cold)
        assert warm.exit_code == 2


class TestEditOneFile:
    def test_only_the_edited_file_re_lints(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = LintCache(tmp_path / "cache")
        lint_paths(paths, cache=cache)

        write(tmp_path, "runtime/c.py", CLEAN)  # fix the finding
        report = lint_paths(paths, cache=cache)
        assert cache.hits == len(paths) - 1
        assert cache.misses == 1
        assert report.findings == []

        # ... and the fix is itself cached for the next run.
        lint_paths(paths, cache=cache)
        assert cache.hits == len(paths)
        assert cache.misses == 0

    def test_byte_identical_to_an_uncached_run_after_the_edit(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = LintCache(tmp_path / "cache")
        lint_paths(paths, cache=cache)

        write(tmp_path, "pkg/b.py", "import secrets\n")
        warm = lint_paths(paths, cache=cache)
        fresh = lint_paths(paths)  # no cache at all
        assert render_json(warm) == render_json(fresh)


class TestFingerprint:
    def test_rule_selection_change_invalidates_everything(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = LintCache(tmp_path / "cache")
        lint_paths(paths, rule_ids=["RPR001"], cache=cache)
        assert cache.misses == len(paths)

        lint_paths(paths, rule_ids=["RPR001", "RPR006"], cache=cache)
        assert cache.hits == 0
        assert cache.misses == len(paths)

        # Back to the original selection: also cold — the cache file
        # holds one fingerprint, not one per selection.
        lint_paths(paths, rule_ids=["RPR001"], cache=cache)
        assert cache.hits == 0

    def test_corrupt_cache_file_is_a_cold_run(self, tmp_path):
        paths = make_tree(tmp_path)
        cache = LintCache(tmp_path / "cache")
        cold = lint_paths(paths, cache=cache)
        cache.path.write_text("{not json")
        warm = lint_paths(paths, cache=cache)
        assert cache.hits == 0
        assert render_json(warm) == render_json(cold)


class TestProjectScopeInteraction:
    def test_scoped_files_reparse_but_reuse_cached_findings(self, tmp_path):
        # simulator.py/fastpath.py sit in RPR002's project scope: a warm
        # run must re-parse them (finalize needs real ASTs) yet still
        # reuse their cached per-file findings, and cross-file findings
        # must be recomputed identically.
        sim = write(
            tmp_path,
            "engines/simulator.py",
            """\
            from repro.runtime.events import EventKind

            def run(events, obs):
                for e in events:
                    if e.kind is EventKind.COLD_START:
                        obs.record_cold()
            """,
        )
        fast = write(
            tmp_path,
            "engines/fastpath.py",
            """\
            from repro.runtime.events import EventKind

            def run(events, obs):
                if events and events[0].kind is EventKind.COLD_START:
                    obs.record_cold()
            """,
        )
        cache = LintCache(tmp_path / "cache")
        cold = lint_paths([sim, fast], cache=cache)
        warm = lint_paths([sim, fast], cache=cache)
        assert cache.hits == 2
        assert render_json(warm) == render_json(cold)

        # Break parity in one file: the asymmetry is found on the next
        # (warm) run even though only one file changed.
        fast.write_text(fast.read_text().replace("obs.record_cold()", "pass"))
        report = lint_paths([sim, fast], cache=cache)
        assert [f.rule for f in report.findings] == ["RPR002"]
