"""The lint engine itself: parsing, suppressions, selection, reporters."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import analysis
from repro.analysis import (
    META_RULE_ID,
    Finding,
    Severity,
    lint_paths,
    make_rules,
    render_json,
    render_text,
    rule_ids,
    rule_summaries,
    run_lint,
)


def write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return path


@pytest.fixture()
def bad_file(tmp_path: Path) -> Path:
    # Under runtime/ so the determinism rule is in scope.
    return write(tmp_path, "runtime/bad.py", "import random\n")


class TestEngineBasics:
    def test_finds_planted_violation(self, bad_file):
        report = lint_paths([bad_file])
        assert not report.clean
        assert report.exit_code == 1
        assert [f.rule for f in report.findings] == ["RPR001"]
        assert report.findings[0].line == 1

    def test_clean_report_exit_zero(self, tmp_path):
        path = write(tmp_path, "runtime/ok.py", "X = 1\n")
        report = lint_paths([path])
        assert report.clean and report.exit_code == 0

    def test_findings_sorted_by_position(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/two.py",
            "import random\nimport secrets\n",
        )
        report = lint_paths([path])
        assert [f.line for f in report.findings] == [1, 2]

    def test_syntax_error_reported_not_raised(self, tmp_path):
        path = write(tmp_path, "runtime/broken.py", "def f(:\n")
        report = lint_paths([path])
        assert [f.rule for f in report.findings] == [META_RULE_ID]
        assert "cannot parse" in report.findings[0].message

    def test_registry_lists_the_rule_pack(self):
        assert rule_ids() == [
            "RPR001", "RPR002", "RPR003", "RPR004", "RPR005", "RPR006",
            "RPR007", "RPR008", "RPR009", "RPR010",
        ]
        summaries = rule_summaries()
        assert set(summaries) == set(rule_ids())
        assert all(summaries.values())

    def test_rule_selection(self, bad_file):
        assert lint_paths([bad_file], rule_ids=["RPR004"]).clean
        assert not lint_paths([bad_file], rule_ids=["RPR001"]).clean

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ValueError, match="RPR999"):
            make_rules(["RPR999"])


class TestSuppressions:
    def test_inline_waiver_with_reason(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/waived.py",
            "import random  # repro: lint-ok[RPR001] fixture needs it\n",
        )
        assert lint_paths([path]).clean

    def test_standalone_waiver_covers_next_line(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/waived.py",
            "# repro: lint-ok[RPR001] fixture needs it\nimport random\n",
        )
        assert lint_paths([path]).clean

    def test_multiline_waiver_comment_block(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/waived.py",
            "# repro: lint-ok[RPR001] a reason too long to fit on\n"
            "# one comment line continues here\n"
            "import random\n",
        )
        assert lint_paths([path]).clean

    def test_star_waives_every_rule(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/waived.py",
            "import random  # repro: lint-ok[*] fixture sandbox\n",
        )
        assert lint_paths([path]).clean

    def test_waiver_for_other_rule_does_not_cover(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/waived.py",
            "import random  # repro: lint-ok[RPR004] wrong rule\n",
        )
        assert [f.rule for f in lint_paths([path]).findings] == ["RPR001"]

    def test_waiver_without_reason_is_itself_a_finding(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/waived.py",
            "import random  # repro: lint-ok[RPR001]\n",
        )
        rules = {f.rule for f in lint_paths([path]).findings}
        # The reasonless waiver is RPR000 *and* fails to suppress RPR001.
        assert rules == {META_RULE_ID, "RPR001"}

    def test_waiver_naming_unknown_rule_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/ok.py",
            "X = 1  # repro: lint-ok[RPR777] no such rule\n",
        )
        findings = lint_paths([path]).findings
        assert [f.rule for f in findings] == [META_RULE_ID]
        assert "RPR777" in findings[0].message

    def test_lint_ok_inside_string_literal_is_not_a_waiver(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/strlit.py",
            'DOC = "# repro: lint-ok[RPR001] not a comment"\nimport random\n',
        )
        assert [f.rule for f in lint_paths([path]).findings] == ["RPR001"]


class TestFileDiscovery:
    def test_directories_expand_and_pycache_skipped(self, tmp_path):
        write(tmp_path, "pkg/a.py", "A = 1\n")
        write(tmp_path, "pkg/__pycache__/junk.py", "import random\n")
        files = analysis.iter_python_files([tmp_path])
        assert [p.name for p in files] == ["a.py"]

    def test_duplicates_collapse(self, tmp_path):
        path = write(tmp_path, "pkg/a.py", "A = 1\n")
        files = analysis.iter_python_files([path, path, tmp_path])
        assert len(files) == 1

    def test_explicit_file_kept_even_outside_scope(self, tmp_path):
        path = write(tmp_path, "loose.py", "import random\n")
        # Out of the determinism scope: linted, but RPR001 does not apply.
        assert lint_paths([path]).clean


class TestReporters:
    def test_text_line_shape(self, bad_file):
        report = lint_paths([bad_file])
        first = render_text(report).splitlines()[0]
        assert first.startswith(f"{report.findings[0].path}:1:0: RPR001 ")
        assert "[error]" in first

    def test_text_summary_trailer(self, bad_file):
        assert "1 finding(s)" in render_text(lint_paths([bad_file]))
        clean = lint_paths([bad_file], rule_ids=["RPR002"])
        assert "clean" in render_text(clean)

    def test_json_document(self, bad_file):
        report = lint_paths([bad_file])
        doc = json.loads(render_json(report))
        assert doc["version"] == 1
        assert doc["clean"] is False
        assert doc["n_files"] == 1
        assert doc["rules"] == rule_ids()
        (finding,) = doc["findings"]
        assert finding["rule"] == "RPR001"
        assert finding["severity"] == "error"
        assert finding["line"] == 1

    def test_finding_round_trip(self):
        finding = Finding("a.py", 3, 7, "RPR001", Severity.ERROR, "msg")
        assert finding.to_dict() == {
            "path": "a.py",
            "line": 3,
            "col": 7,
            "rule": "RPR001",
            "severity": "error",
            "message": "msg",
        }


class TestRunLint:
    def test_run_lint_counts_files(self, tmp_path):
        a = write(tmp_path, "runtime/a.py", "A = 1\n")
        b = write(tmp_path, "runtime/b.py", "B = 2\n")
        report = run_lint([a, b])
        assert report.n_files == 2 and report.clean

    def test_by_rule_groups(self, tmp_path):
        path = write(
            tmp_path, "runtime/two.py", "import random\nimport secrets\n"
        )
        grouped = lint_paths([path]).by_rule()
        assert len(grouped["RPR001"]) == 2
