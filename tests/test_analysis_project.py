"""The analysis core: symbol table, call graph, reaching definitions."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.analysis import ProjectContext
from repro.analysis.engine import SourceModule
from repro.analysis.project import (
    UNKNOWN,
    TypeInfo,
    import_aliases,
    resolve_alias,
)


def load(tmp_path: Path, rel: str, source: str) -> SourceModule:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return SourceModule.load(path)


def context(tmp_path: Path, **files: str) -> ProjectContext:
    return ProjectContext(
        [load(tmp_path, f"{name}.py", source) for name, source in files.items()]
    )


def fn_defs(ctx: ProjectContext, module_index: int, qual: str):
    """ReachingDefs for ``Class.method`` or ``func`` in one module."""
    module = ctx[module_index]
    syms = ctx.symbols.module(module.display)
    if "." in qual:
        cls, method = qual.split(".")
        node = syms.classes[cls].methods[method].node
    else:
        node = syms.functions[qual].node
    return ctx.reaching(node, module)


class TestSymbolTable:
    def test_classes_functions_and_init_attrs(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            import threading

            def helper():
                return 1

            class Registry:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.items = {}
                    self.count = 0

                def add(self, key):
                    self.items[key] = True
            """,
        )
        syms = ctx.symbols.module(ctx[0].display)
        assert set(syms.functions) == {"helper"}
        cls = syms.classes["Registry"]
        assert cls.init_attrs == ("lock", "items", "count")
        assert set(cls.methods) == {"__init__", "add"}
        assert cls.attr_types["lock"] == TypeInfo("call", "threading.Lock")
        assert cls.attr_types["items"] == TypeInfo("container", "dict")
        assert cls.attr_types["count"] == TypeInfo("scalar", "int")

    def test_conflicting_reassignment_degrades_to_unknown(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            class C:
                def __init__(self):
                    self.x = {}

                def reset(self):
                    self.x = 0
            """,
        )
        cls = ctx.symbols.module(ctx[0].display).classes["C"]
        assert cls.attr_types["x"] is UNKNOWN

    def test_none_placeholder_does_not_conflict(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            class C:
                def __init__(self):
                    self.ticker = None

                def start(self):
                    self.ticker = {}
            """,
        )
        cls = ctx.symbols.module(ctx[0].display).classes["C"]
        assert cls.attr_types["ticker"] == TypeInfo("container", "dict")

    def test_find_class_prefers_asking_module(self, tmp_path):
        ctx = context(
            tmp_path,
            a="""\
            class Shared:
                def __init__(self):
                    self.origin = "a"
            """,
            b="""\
            class Shared:
                def __init__(self):
                    self.origin = "b"
            """,
        )
        found = ctx.symbols.find_class("Shared", prefer_module=ctx[1].display)
        assert found.module == ctx[1].display
        assert ctx.symbols.find_class("Nope") is None

    def test_import_aliases_and_resolution(self, tmp_path):
        module = load(
            tmp_path,
            "mod.py",
            """\
            import numpy as np
            import collections
            from threading import Lock as Mutex
            """,
        )
        aliases = import_aliases(module.tree)
        assert aliases["np"] == "numpy"
        assert aliases["Mutex"] == "threading.Lock"
        assert resolve_alias("np.zeros", aliases) == "numpy.zeros"
        assert resolve_alias("collections.deque", aliases) == "collections.deque"
        assert resolve_alias("unrelated.name", aliases) == "unrelated.name"


class TestReachingDefs:
    def test_numpy_factory_dtype_and_astype(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            import numpy as np

            def f(n):
                levels = np.full(n, 0, dtype=np.int8)
                wide = levels.astype(np.int64)
                budget = np.zeros(n)
                return levels, wide, budget
            """,
        )
        defs = fn_defs(ctx, 0, "f")
        assert defs.type_of("levels") == TypeInfo("array", "int8")
        assert defs.type_of("wide") == TypeInfo("array", "int64")
        # zeros defaults to float64 when no dtype is given.
        assert defs.type_of("budget") == TypeInfo("array", "float64")

    def test_subscript_preserves_array_dtype(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            import numpy as np

            def f(rows):
                col = np.arange(10, dtype=np.int32)
                picked = col[rows]
                return picked
            """,
        )
        defs = fn_defs(ctx, 0, "f")
        assert defs.type_of("picked") == TypeInfo("array", "int32")

    def test_conflicting_rebinding_is_unknown(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            import numpy as np

            def f(flag):
                x = np.zeros(4, dtype=np.int8)
                if flag:
                    x = {}
                return x
            """,
        )
        assert fn_defs(ctx, 0, "f").type_of("x") is UNKNOWN

    def test_parameter_annotation_is_a_definition(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            class Session:
                def __init__(self):
                    self.n = 0

            def f(s: Session):
                return s
            """,
        )
        assert fn_defs(ctx, 0, "f").type_of("s") == TypeInfo(
            "instance", "Session"
        )

    def test_self_attr_resolves_through_owner_class(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            import numpy as np

            class Tables:
                def __init__(self, n):
                    self.highest_mb = np.zeros(n, dtype=np.int32)

            class Stepper:
                def __init__(self, tables: Tables):
                    self.tables = tables

                def step(self):
                    t = self.tables
                    return t.highest_mb
            """,
        )
        defs = fn_defs(ctx, 0, "Stepper.step")
        assert defs.type_of("self") == TypeInfo("instance", "Stepper")
        assert defs.type_of("t") == TypeInfo("instance", "Tables")

    def test_constructor_call_type_resolves_attrs(self, tmp_path):
        # A binding typed call:pkg.Cls is an instance of Cls when Cls
        # is a scanned project class — how RPR009 sees dtypes through
        # `self.tables = VariantTables(...)` three modules away.
        ctx = context(
            tmp_path,
            tables="""\
            import numpy as np

            class VariantTables:
                def __init__(self, n):
                    self.highest_mb = np.zeros(n, dtype=np.int32)
            """,
            stepper="""\
            from tables import VariantTables

            class Stepper:
                def __init__(self, n):
                    self.tables = VariantTables(n)

                def step(self):
                    col = self.tables.highest_mb
                    return col
            """,
        )
        defs = fn_defs(ctx, 1, "Stepper.step")
        assert defs.type_of("col") == TypeInfo("array", "int32")

    def test_method_return_annotation_types_the_call(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            class Managed:
                def __init__(self):
                    self.n = 0

            class Manager:
                def __init__(self):
                    self.registry = {}

                def _get(self, sid) -> Managed:
                    return self.registry[sid]

                def info(self, sid):
                    managed = self._get(sid)
                    return managed
            """,
        )
        defs = fn_defs(ctx, 0, "Manager.info")
        assert defs.type_of("managed") == TypeInfo("instance", "Managed")

    def test_definitions_lists_every_textual_assignment(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            def f():
                x = 1
                x = 2
                return x
            """,
        )
        assert len(fn_defs(ctx, 0, "f").definitions("x")) == 2
        assert fn_defs(ctx, 0, "f").definitions("missing") == []


class TestCallGraph:
    def test_function_constructor_and_method_edges(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            def helper():
                return 1

            class Worker:
                def __init__(self):
                    self.n = helper()

                def run(self):
                    return self.n

            def main():
                w = Worker()
                w.run()
                helper()
            """,
        )
        display = ctx[0].display
        graph = ctx.call_graph
        main_edges = graph.callees(f"{display}::main")
        assert f"{display}::Worker.__init__" in main_edges
        assert f"{display}::Worker.run" in main_edges
        assert f"{display}::helper" in main_edges
        assert f"{display}::main" in graph.callers(f"{display}::helper")
        assert f"{display}::Worker.__init__" in graph.callers(
            f"{display}::helper"
        )

    def test_unresolvable_receiver_adds_no_edge(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            def main(thing):
                thing.run()
            """,
        )
        assert ctx.call_graph.callees(f"{ctx[0].display}::main") == set()


class TestProjectContext:
    def test_sequence_protocol_and_lazy_layers(self, tmp_path):
        ctx = context(tmp_path, a="X = 1\n", b="Y = 2\n")
        assert len(ctx) == 2
        assert [m.path.name for m in ctx] == ["a.py", "b.py"]
        assert ctx._symbols is None  # not built until asked for
        _ = ctx.symbols
        assert ctx._symbols is not None

    def test_reaching_is_cached_per_function(self, tmp_path):
        ctx = context(
            tmp_path,
            mod="""\
            def f():
                x = 1
                return x
            """,
        )
        module = ctx[0]
        node = ctx.symbols.module(module.display).functions["f"].node
        assert ctx.reaching(node, module) is ctx.reaching(node, module)
