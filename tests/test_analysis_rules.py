"""The rule pack: one flagged and one clean fixture per behaviour."""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_paths

REPRO_ROOT = Path(repro.__file__).resolve().parent


def write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def rules_hit(path: Path | list[Path], *rule_ids: str) -> list[str]:
    paths = path if isinstance(path, list) else [path]
    report = lint_paths(paths, rule_ids=list(rule_ids) or None)
    return [f.rule for f in report.findings]


class TestDeterminismRPR001:
    def test_stdlib_random_import_flagged(self, tmp_path):
        path = write(tmp_path, "runtime/x.py", "import random\n")
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_secrets_import_flagged(self, tmp_path):
        path = write(tmp_path, "faults/x.py", "from secrets import token_hex\n")
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_unseeded_random_call_flagged(self, tmp_path):
        # The import and the call are two findings: planting a single
        # random.random() in engine code cannot slip through.
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            import random

            def draw():
                return random.random()
            """,
        )
        report = lint_paths([path], rule_ids=["RPR001"])
        assert len(report.findings) == 2
        assert any("random.random" in f.message for f in report.findings)

    def test_wall_clock_reads_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "milp/x.py",
            """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
        )
        assert rules_hit(path, "RPR001") == ["RPR001", "RPR001"]

    def test_perf_counter_allowed(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            import time

            def span():
                return time.perf_counter()
            """,
        )
        assert rules_hit(path, "RPR001") == []

    def test_numpy_global_draw_flagged_explicit_generator_allowed(
        self, tmp_path
    ):
        path = write(
            tmp_path,
            "sota/x.py",
            """\
            import numpy as np

            def bad():
                return np.random.rand(3)

            def good(seed):
                return np.random.default_rng(seed).random(3)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR001"])
        assert len(report.findings) == 1
        assert "numpy.random.rand" in report.findings[0].message

    def test_set_iteration_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def fold(items):
                total = 0
                for fid in set(items):
                    total += fid
                return total
            """,
        )
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_comprehension_over_set_literal_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            "OUT = [x for x in {1, 2, 3}]\n",
        )
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_sorted_set_iteration_allowed(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def fold(items):
                return [fid for fid in sorted(set(items))]
            """,
        )
        assert rules_hit(path, "RPR001") == []

    def test_out_of_scope_module_exempt(self, tmp_path):
        path = write(tmp_path, "plotting/x.py", "import random\n")
        assert rules_hit(path, "RPR001") == []


SIM_TEMPLATE = """\
from repro.runtime.events import EventKind


def run(events, obs):
    events.emit(0, EventKind.COLD_START, 1, "low", 1.0)
    events.emit(0, EventKind.WARM_START, 1, "low", 1.0)
    obs.record_cold_start(0, 1)
"""

FAST_TEMPLATE = """\
from repro.runtime.events import EventKind


def run(events, obs):
    events.emit(0, EventKind.COLD_START, 1, "low", 1.0)
    events.emit(0, EventKind.WARM_START, 1, "low", 1.0)
    obs.record_cold_start(0, 1)
"""


class TestEngineParityRPR002:
    def pair(self, tmp_path, sim=SIM_TEMPLATE, fast=FAST_TEMPLATE):
        return [
            write(tmp_path, "engines/simulator.py", sim),
            write(tmp_path, "engines/fastpath.py", fast),
        ]

    def test_symmetric_pair_clean(self, tmp_path):
        assert rules_hit(self.pair(tmp_path), "RPR002") == []

    def test_event_kind_missing_from_fast_loop(self, tmp_path):
        fast = FAST_TEMPLATE.replace(
            'events.emit(0, EventKind.WARM_START, 1, "low", 1.0)\n    ', ""
        )
        paths = self.pair(tmp_path, fast=fast)
        report = lint_paths(paths, rule_ids=["RPR002"])
        (finding,) = report.findings
        assert "WARM_START" in finding.message
        assert finding.path.endswith("simulator.py")  # anchored where present

    def test_obs_hook_missing_from_reference_loop(self, tmp_path):
        sim = SIM_TEMPLATE.replace("    obs.record_cold_start(0, 1)\n", "")
        report = lint_paths(self.pair(tmp_path, sim=sim), rule_ids=["RPR002"])
        (finding,) = report.findings
        assert "record_cold_start" in finding.message
        assert finding.path.endswith("fastpath.py")

    def test_run_result_kwarg_asymmetry(self, tmp_path):
        sim = SIM_TEMPLATE + "\nRESULT = RunResult(cold_starts=1, drops=2)\n"
        fast = FAST_TEMPLATE + "\nRESULT = RunResult(cold_starts=1)\n"
        report = lint_paths(
            self.pair(tmp_path, sim=sim, fast=fast), rule_ids=["RPR002"]
        )
        (finding,) = report.findings
        assert "drops" in finding.message

    def test_waiver_with_reason_accepted(self, tmp_path):
        sim = SIM_TEMPLATE.replace(
            "    events.emit(0, EventKind.WARM_START",
            "    # repro: lint-ok[RPR002] emitted by a shared helper\n"
            "    events.emit(0, EventKind.WARM_START",
        )
        fast = FAST_TEMPLATE.replace(
            'events.emit(0, EventKind.WARM_START, 1, "low", 1.0)\n    ', ""
        )
        assert rules_hit(self.pair(tmp_path, sim=sim, fast=fast), "RPR002") == []

    def test_unpaired_engine_file_not_compared(self, tmp_path):
        path = write(tmp_path, "engines/simulator.py", SIM_TEMPLATE)
        assert rules_hit(path, "RPR002") == []


class TestRealEngineFixtureCopy:
    """The ISSUE acceptance criterion: copy the real engine pair, delete a
    handler from one copy, and RPR002 must catch it."""

    @pytest.fixture()
    def engine_copies(self, tmp_path):
        sandbox = tmp_path / "runtime"
        sandbox.mkdir()
        for name in ("simulator.py", "fastpath.py"):
            shutil.copy(REPRO_ROOT / "runtime" / name, sandbox / name)
        return sandbox

    def test_pristine_copies_are_clean(self, engine_copies):
        assert rules_hit(list(engine_copies.glob("*.py")), "RPR002") == []

    def test_removed_event_kind_handler_caught(self, engine_copies):
        fast = engine_copies / "fastpath.py"
        mutated = fast.read_text().replace(
            "EventKind.COLD_START", "EventKind.WARM_START"
        )
        assert mutated != fast.read_text()
        fast.write_text(mutated)
        report = lint_paths(
            list(engine_copies.glob("*.py")), rule_ids=["RPR002"]
        )
        assert any(
            f.rule == "RPR002" and "COLD_START" in f.message
            for f in report.findings
        )


class TestPolicyContractRPR003:
    def test_init_without_super_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class BadPolicy(KeepAlivePolicy):
                def __init__(self):
                    self.window = 10
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "super().__init__" in finding.message

    def test_init_with_super_clean(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class GoodPolicy(KeepAlivePolicy):
                def __init__(self):
                    super().__init__()
                    self.window = 10
            """,
        )
        assert rules_hit(path, "RPR003") == []

    def test_bind_override_without_super_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class BadPolicy(KeepAlivePolicy):
                def bind(self, assignment):
                    self.assignment = assignment
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "super().bind" in finding.message

    def test_lambda_on_self_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class BadPolicy(KeepAlivePolicy):
                def __init__(self):
                    super().__init__()
                    self.score = lambda f: f.calls
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "lambda" in finding.message

    def test_module_level_mutable_state_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            CACHE = {}

            class SomePolicy(KeepAlivePolicy):
                pass
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "CACHE" in finding.message

    def test_module_without_policy_classes_exempt(self, tmp_path):
        path = write(tmp_path, "helpers.py", "CACHE = {}\n")
        assert rules_hit(path, "RPR003") == []

    def test_dunder_and_immutable_module_state_allowed(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            __all__ = ["SomePolicy"]
            TIERS = ("low", "high")

            class SomePolicy(KeepAlivePolicy):
                pass
            """,
        )
        assert rules_hit(path, "RPR003") == []


class TestDeprecationRPR004:
    def test_simulation_config_fast_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.runtime.simulator import SimulationConfig

            CONFIG = SimulationConfig(fast=True)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR004"])
        (finding,) = report.findings
        assert "fast" in finding.message

    def test_simulation_config_without_fast_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.runtime.simulator import SimulationConfig

            CONFIG = SimulationConfig(horizon_minutes=60)
            """,
        )
        assert rules_hit(path, "RPR004") == []

    def test_shimmed_cli_import_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            "from repro.cli import _POLICIES\n",
        )
        report = lint_paths([path], rule_ids=["RPR004"])
        (finding,) = report.findings
        assert "_POLICIES" in finding.message

    def test_shimmed_attribute_reference_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro import cli

            NAMES = cli._LONG_WINDOW_POLICIES
            """,
        )
        assert rules_hit(path, "RPR004") == ["RPR004"]

    def test_new_shim_without_removal_note_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def old_entry():
                warnings.warn("use new_entry instead", DeprecationWarning)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR004"])
        (finding,) = report.findings
        assert "removal note" in finding.message

    def test_shim_with_removal_note_in_message_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def old_entry():
                warnings.warn(
                    "use new_entry instead; removed in the next release",
                    DeprecationWarning,
                )
            """,
        )
        assert rules_hit(path, "RPR004") == []

    def test_shim_with_removal_note_in_comment_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def old_entry():
                # Shim removed once downstream migrates (tracked in
                # the deprecation section of the changelog).
                warnings.warn("use new_entry instead", DeprecationWarning)
            """,
        )
        assert rules_hit(path, "RPR004") == []

    def test_non_deprecation_warn_ignored(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def noisy():
                warnings.warn("heads up", RuntimeWarning)
            """,
        )
        assert rules_hit(path, "RPR004") == []


class TestFacadeRPR007:
    def test_positional_params_in_facade_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "repro/api.py",
            """\
            def simulate(trace, assignment, policy):
                return None
            """,
        )
        report = lint_paths([path], rule_ids=["RPR007"])
        (finding,) = report.findings
        assert "assignment" in finding.message
        assert "policy" in finding.message

    def test_keyword_only_facade_clean(self, tmp_path):
        path = write(
            tmp_path,
            "repro/api.py",
            """\
            def simulate(trace, *, assignment, policy):
                return None
            """,
        )
        assert rules_hit(path, "RPR007") == []

    def test_serve_modules_are_facade(self, tmp_path):
        path = write(
            tmp_path,
            "repro/serve/session.py",
            """\
            def open_session(trace, policy):
                return None
            """,
        )
        assert rules_hit(path, "RPR007") == ["RPR007"]

    def test_private_and_nested_functions_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "repro/serve/app.py",
            """\
            def _helper(a, b, c):
                return a

            def public(spec):
                def inner(a, b):
                    return a
                return inner

            class Manager:
                def method(self, sid, body):
                    return sid
            """,
        )
        assert rules_hit(path, "RPR007") == []

    def test_non_facade_module_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "repro/runtime/x.py",
            """\
            def step(sim, minute, events):
                return None
            """,
        )
        assert rules_hit(path, "RPR007") == []

    def test_waiver_with_reason_accepted(self, tmp_path):
        path = write(
            tmp_path,
            "repro/api.py",
            """\
            def compare(a, b):  # repro: lint-ok[RPR007] symmetric pair
                return a is b
            """,
        )
        assert rules_hit(path, "RPR007") == []


class TestSpecStringsRPR005:
    def test_bad_from_spec_literal_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.faults.plan import FaultPlan

            PLAN = FaultPlan.from_spec("bogus=0.1")
            """,
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "bogus" in finding.message

    def test_good_from_spec_literal_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.faults.plan import FaultPlan

            PLAN = FaultPlan.from_spec("spawn=0.1,slow=0.05,seed=7")
            """,
        )
        assert rules_hit(path, "RPR005") == []

    def test_unknown_policy_name_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.api import make_policy

            POLICY = make_policy("not-a-policy")
            """,
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "not-a-policy" in finding.message

    def test_registered_policy_name_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.api import make_policy

            POLICY = make_policy("pulse")
            """,
        )
        assert rules_hit(path, "RPR005") == []

    def test_policies_constant_tuple_checked(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            'DEFAULT_POLICIES = ("pulse", "typo-policy")\n',
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "typo-policy" in finding.message

    def test_bad_faults_argparse_default_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import argparse

            parser = argparse.ArgumentParser()
            parser.add_argument("--faults", default="spwan=0.1")
            """,
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "spwan" in finding.message

    def test_bad_rates_argparse_default_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import argparse

            parser = argparse.ArgumentParser()
            parser.add_argument("--rates", default="0,oops,0.1")
            """,
        )
        assert rules_hit(path, "RPR005") == ["RPR005"]

    def test_bad_embedded_docstring_example_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            '''\
            def run(spec):
                """Replay with faults, e.g. ``spawn=oops,slow=0.1``."""
            ''',
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "spawn=oops" in finding.message

    def test_good_embedded_example_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            '''\
            def run(spec):
                """Replay with faults, e.g. ``spawn=0.1,seed=7``."""
            ''',
        )
        assert rules_hit(path, "RPR005") == []

    def test_foreign_mini_language_ignored(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            '''\
            def run():
                """Pass ``key=value,mode=fast`` to the other tool."""
            ''',
        )
        assert rules_hit(path, "RPR005") == []


class TestExceptionHygieneRPR006:
    def test_bare_except_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def f():
                try:
                    g()
                except:
                    handle()
            """,
        )
        report = lint_paths([path], rule_ids=["RPR006"])
        (finding,) = report.findings
        assert "bare" in finding.message

    def test_swallowed_exception_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "traces/x.py",
            """\
            def f():
                try:
                    g()
                except ValueError:
                    pass
            """,
        )
        report = lint_paths([path], rule_ids=["RPR006"])
        (finding,) = report.findings
        assert "swallowed" in finding.message

    def test_ellipsis_body_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                except OSError:
                    ...
            """,
        )
        assert rules_hit(path, "RPR006") == ["RPR006"]

    def test_broad_handler_without_raise_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                except Exception as exc:
                    record(exc)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR006"])
        (finding,) = report.findings
        assert "re-raise" in finding.message

    def test_broad_handler_with_system_exit_clean(self, tmp_path):
        # The durable worker's crash-isolation boundary: record the
        # failure, then die loudly. SystemExit counts as a raise.
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                except Exception as exc:
                    record(exc)
                    raise SystemExit(1)
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_broad_handler_with_conditional_raise_clean(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f(on_error):
                try:
                    g()
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    record(exc)
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_raise_inside_nested_def_does_not_count(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def f():
                try:
                    g()
                except Exception as exc:
                    def later():
                        raise RuntimeError("never fires here")
                    record(later)
            """,
        )
        assert rules_hit(path, "RPR006") == ["RPR006"]

    def test_narrow_recording_handler_clean(self, tmp_path):
        path = write(
            tmp_path,
            "traces/x.py",
            """\
            def f(report):
                try:
                    g()
                except ValueError as exc:
                    report.record_issue(exc)
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_waiver_with_reason_accepted(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                # repro: lint-ok[RPR006] failure already recorded upstream
                except OSError:
                    pass
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_out_of_scope_module_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "obs/x.py",
            """\
            def f():
                try:
                    g()
                except ValueError:
                    pass
            """,
        )
        assert rules_hit(path, "RPR006") == []


class TestShippedTreeSelfCheck:
    def test_repro_lints_clean(self):
        report = lint_paths([REPRO_ROOT])
        assert report.findings == [], [str(f) for f in report.findings]
        assert report.exit_code == 0
