"""The rule pack: one flagged and one clean fixture per behaviour."""

from __future__ import annotations

import shutil
import textwrap
from pathlib import Path

import pytest

import repro
from repro.analysis import lint_paths

REPRO_ROOT = Path(repro.__file__).resolve().parent


def write(tmp_path: Path, rel: str, source: str) -> Path:
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return path


def rules_hit(path: Path | list[Path], *rule_ids: str) -> list[str]:
    paths = path if isinstance(path, list) else [path]
    report = lint_paths(paths, rule_ids=list(rule_ids) or None)
    return [f.rule for f in report.findings]


class TestDeterminismRPR001:
    def test_stdlib_random_import_flagged(self, tmp_path):
        path = write(tmp_path, "runtime/x.py", "import random\n")
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_secrets_import_flagged(self, tmp_path):
        path = write(tmp_path, "faults/x.py", "from secrets import token_hex\n")
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_unseeded_random_call_flagged(self, tmp_path):
        # The import and the call are two findings: planting a single
        # random.random() in engine code cannot slip through.
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            import random

            def draw():
                return random.random()
            """,
        )
        report = lint_paths([path], rule_ids=["RPR001"])
        assert len(report.findings) == 2
        assert any("random.random" in f.message for f in report.findings)

    def test_wall_clock_reads_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "milp/x.py",
            """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
        )
        assert rules_hit(path, "RPR001") == ["RPR001", "RPR001"]

    def test_perf_counter_allowed(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            import time

            def span():
                return time.perf_counter()
            """,
        )
        assert rules_hit(path, "RPR001") == []

    def test_numpy_global_draw_flagged_explicit_generator_allowed(
        self, tmp_path
    ):
        path = write(
            tmp_path,
            "sota/x.py",
            """\
            import numpy as np

            def bad():
                return np.random.rand(3)

            def good(seed):
                return np.random.default_rng(seed).random(3)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR001"])
        assert len(report.findings) == 1
        assert "numpy.random.rand" in report.findings[0].message

    def test_set_iteration_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def fold(items):
                total = 0
                for fid in set(items):
                    total += fid
                return total
            """,
        )
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_comprehension_over_set_literal_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            "OUT = [x for x in {1, 2, 3}]\n",
        )
        assert rules_hit(path, "RPR001") == ["RPR001"]

    def test_sorted_set_iteration_allowed(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def fold(items):
                return [fid for fid in sorted(set(items))]
            """,
        )
        assert rules_hit(path, "RPR001") == []

    def test_out_of_scope_module_exempt(self, tmp_path):
        path = write(tmp_path, "plotting/x.py", "import random\n")
        assert rules_hit(path, "RPR001") == []


SIM_TEMPLATE = """\
from repro.runtime.events import EventKind


def run(events, obs):
    events.emit(0, EventKind.COLD_START, 1, "low", 1.0)
    events.emit(0, EventKind.WARM_START, 1, "low", 1.0)
    obs.record_cold_start(0, 1)
"""

FAST_TEMPLATE = """\
from repro.runtime.events import EventKind


def run(events, obs):
    events.emit(0, EventKind.COLD_START, 1, "low", 1.0)
    events.emit(0, EventKind.WARM_START, 1, "low", 1.0)
    obs.record_cold_start(0, 1)
"""


class TestEngineParityRPR002:
    def pair(self, tmp_path, sim=SIM_TEMPLATE, fast=FAST_TEMPLATE):
        return [
            write(tmp_path, "engines/simulator.py", sim),
            write(tmp_path, "engines/fastpath.py", fast),
        ]

    def test_symmetric_pair_clean(self, tmp_path):
        assert rules_hit(self.pair(tmp_path), "RPR002") == []

    def test_event_kind_missing_from_fast_loop(self, tmp_path):
        fast = FAST_TEMPLATE.replace(
            'events.emit(0, EventKind.WARM_START, 1, "low", 1.0)\n    ', ""
        )
        paths = self.pair(tmp_path, fast=fast)
        report = lint_paths(paths, rule_ids=["RPR002"])
        (finding,) = report.findings
        assert "WARM_START" in finding.message
        assert finding.path.endswith("simulator.py")  # anchored where present

    def test_obs_hook_missing_from_reference_loop(self, tmp_path):
        sim = SIM_TEMPLATE.replace("    obs.record_cold_start(0, 1)\n", "")
        report = lint_paths(self.pair(tmp_path, sim=sim), rule_ids=["RPR002"])
        (finding,) = report.findings
        assert "record_cold_start" in finding.message
        assert finding.path.endswith("fastpath.py")

    def test_run_result_kwarg_asymmetry(self, tmp_path):
        sim = SIM_TEMPLATE + "\nRESULT = RunResult(cold_starts=1, drops=2)\n"
        fast = FAST_TEMPLATE + "\nRESULT = RunResult(cold_starts=1)\n"
        report = lint_paths(
            self.pair(tmp_path, sim=sim, fast=fast), rule_ids=["RPR002"]
        )
        (finding,) = report.findings
        assert "drops" in finding.message

    def test_waiver_with_reason_accepted(self, tmp_path):
        sim = SIM_TEMPLATE.replace(
            "    events.emit(0, EventKind.WARM_START",
            "    # repro: lint-ok[RPR002] emitted by a shared helper\n"
            "    events.emit(0, EventKind.WARM_START",
        )
        fast = FAST_TEMPLATE.replace(
            'events.emit(0, EventKind.WARM_START, 1, "low", 1.0)\n    ', ""
        )
        assert rules_hit(self.pair(tmp_path, sim=sim, fast=fast), "RPR002") == []

    def test_unpaired_engine_file_not_compared(self, tmp_path):
        path = write(tmp_path, "engines/simulator.py", SIM_TEMPLATE)
        assert rules_hit(path, "RPR002") == []


class TestRealEngineFixtureCopy:
    """The ISSUE acceptance criterion: copy the real engine pair, delete a
    handler from one copy, and RPR002 must catch it."""

    @pytest.fixture()
    def engine_copies(self, tmp_path):
        sandbox = tmp_path / "runtime"
        sandbox.mkdir()
        for name in ("simulator.py", "fastpath.py"):
            shutil.copy(REPRO_ROOT / "runtime" / name, sandbox / name)
        return sandbox

    def test_pristine_copies_are_clean(self, engine_copies):
        assert rules_hit(list(engine_copies.glob("*.py")), "RPR002") == []

    def test_removed_event_kind_handler_caught(self, engine_copies):
        fast = engine_copies / "fastpath.py"
        mutated = fast.read_text().replace(
            "EventKind.COLD_START", "EventKind.WARM_START"
        )
        assert mutated != fast.read_text()
        fast.write_text(mutated)
        report = lint_paths(
            list(engine_copies.glob("*.py")), rule_ids=["RPR002"]
        )
        assert any(
            f.rule == "RPR002" and "COLD_START" in f.message
            for f in report.findings
        )


class TestPolicyContractRPR003:
    def test_init_without_super_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class BadPolicy(KeepAlivePolicy):
                def __init__(self):
                    self.window = 10
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "super().__init__" in finding.message

    def test_init_with_super_clean(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class GoodPolicy(KeepAlivePolicy):
                def __init__(self):
                    super().__init__()
                    self.window = 10
            """,
        )
        assert rules_hit(path, "RPR003") == []

    def test_bind_override_without_super_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class BadPolicy(KeepAlivePolicy):
                def bind(self, assignment):
                    self.assignment = assignment
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "super().bind" in finding.message

    def test_lambda_on_self_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            class BadPolicy(KeepAlivePolicy):
                def __init__(self):
                    super().__init__()
                    self.score = lambda f: f.calls
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "lambda" in finding.message

    def test_module_level_mutable_state_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            CACHE = {}

            class SomePolicy(KeepAlivePolicy):
                pass
            """,
        )
        report = lint_paths([path], rule_ids=["RPR003"])
        (finding,) = report.findings
        assert "CACHE" in finding.message

    def test_module_without_policy_classes_exempt(self, tmp_path):
        path = write(tmp_path, "helpers.py", "CACHE = {}\n")
        assert rules_hit(path, "RPR003") == []

    def test_dunder_and_immutable_module_state_allowed(self, tmp_path):
        path = write(
            tmp_path,
            "policies.py",
            """\
            from repro.runtime.policy import KeepAlivePolicy

            __all__ = ["SomePolicy"]
            TIERS = ("low", "high")

            class SomePolicy(KeepAlivePolicy):
                pass
            """,
        )
        assert rules_hit(path, "RPR003") == []


class TestDeprecationRPR004:
    def test_simulation_config_fast_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.runtime.simulator import SimulationConfig

            CONFIG = SimulationConfig(fast=True)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR004"])
        (finding,) = report.findings
        assert "fast" in finding.message

    def test_simulation_config_without_fast_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.runtime.simulator import SimulationConfig

            CONFIG = SimulationConfig(horizon_minutes=60)
            """,
        )
        assert rules_hit(path, "RPR004") == []

    def test_shimmed_cli_import_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            "from repro.cli import _POLICIES\n",
        )
        report = lint_paths([path], rule_ids=["RPR004"])
        (finding,) = report.findings
        assert "_POLICIES" in finding.message

    def test_shimmed_attribute_reference_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro import cli

            NAMES = cli._LONG_WINDOW_POLICIES
            """,
        )
        assert rules_hit(path, "RPR004") == ["RPR004"]

    def test_new_shim_without_removal_note_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def old_entry():
                warnings.warn("use new_entry instead", DeprecationWarning)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR004"])
        (finding,) = report.findings
        assert "removal note" in finding.message

    def test_shim_with_removal_note_in_message_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def old_entry():
                warnings.warn(
                    "use new_entry instead; removed in the next release",
                    DeprecationWarning,
                )
            """,
        )
        assert rules_hit(path, "RPR004") == []

    def test_shim_with_removal_note_in_comment_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def old_entry():
                # Shim removed once downstream migrates (tracked in
                # the deprecation section of the changelog).
                warnings.warn("use new_entry instead", DeprecationWarning)
            """,
        )
        assert rules_hit(path, "RPR004") == []

    def test_non_deprecation_warn_ignored(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import warnings

            def noisy():
                warnings.warn("heads up", RuntimeWarning)
            """,
        )
        assert rules_hit(path, "RPR004") == []


class TestFacadeRPR007:
    def test_positional_params_in_facade_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "repro/api.py",
            """\
            def simulate(trace, assignment, policy):
                return None
            """,
        )
        report = lint_paths([path], rule_ids=["RPR007"])
        (finding,) = report.findings
        assert "assignment" in finding.message
        assert "policy" in finding.message

    def test_keyword_only_facade_clean(self, tmp_path):
        path = write(
            tmp_path,
            "repro/api.py",
            """\
            def simulate(trace, *, assignment, policy):
                return None
            """,
        )
        assert rules_hit(path, "RPR007") == []

    def test_serve_modules_are_facade(self, tmp_path):
        path = write(
            tmp_path,
            "repro/serve/session.py",
            """\
            def open_session(trace, policy):
                return None
            """,
        )
        assert rules_hit(path, "RPR007") == ["RPR007"]

    def test_private_and_nested_functions_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "repro/serve/app.py",
            """\
            def _helper(a, b, c):
                return a

            def public(spec):
                def inner(a, b):
                    return a
                return inner

            class Manager:
                def method(self, sid, body):
                    return sid
            """,
        )
        assert rules_hit(path, "RPR007") == []

    def test_non_facade_module_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "repro/runtime/x.py",
            """\
            def step(sim, minute, events):
                return None
            """,
        )
        assert rules_hit(path, "RPR007") == []

    def test_waiver_with_reason_accepted(self, tmp_path):
        path = write(
            tmp_path,
            "repro/api.py",
            """\
            def compare(a, b):  # repro: lint-ok[RPR007] symmetric pair
                return a is b
            """,
        )
        assert rules_hit(path, "RPR007") == []


class TestSpecStringsRPR005:
    def test_bad_from_spec_literal_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.faults.plan import FaultPlan

            PLAN = FaultPlan.from_spec("bogus=0.1")
            """,
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "bogus" in finding.message

    def test_good_from_spec_literal_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.faults.plan import FaultPlan

            PLAN = FaultPlan.from_spec("spawn=0.1,slow=0.05,seed=7")
            """,
        )
        assert rules_hit(path, "RPR005") == []

    def test_unknown_policy_name_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.api import make_policy

            POLICY = make_policy("not-a-policy")
            """,
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "not-a-policy" in finding.message

    def test_registered_policy_name_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            from repro.api import make_policy

            POLICY = make_policy("pulse")
            """,
        )
        assert rules_hit(path, "RPR005") == []

    def test_policies_constant_tuple_checked(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            'DEFAULT_POLICIES = ("pulse", "typo-policy")\n',
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "typo-policy" in finding.message

    def test_bad_faults_argparse_default_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import argparse

            parser = argparse.ArgumentParser()
            parser.add_argument("--faults", default="spwan=0.1")
            """,
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "spwan" in finding.message

    def test_bad_rates_argparse_default_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            """\
            import argparse

            parser = argparse.ArgumentParser()
            parser.add_argument("--rates", default="0,oops,0.1")
            """,
        )
        assert rules_hit(path, "RPR005") == ["RPR005"]

    def test_bad_embedded_docstring_example_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            '''\
            def run(spec):
                """Replay with faults, e.g. ``spawn=oops,slow=0.1``."""
            ''',
        )
        report = lint_paths([path], rule_ids=["RPR005"])
        (finding,) = report.findings
        assert "spawn=oops" in finding.message

    def test_good_embedded_example_clean(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            '''\
            def run(spec):
                """Replay with faults, e.g. ``spawn=0.1,seed=7``."""
            ''',
        )
        assert rules_hit(path, "RPR005") == []

    def test_foreign_mini_language_ignored(self, tmp_path):
        path = write(
            tmp_path,
            "x.py",
            '''\
            def run():
                """Pass ``key=value,mode=fast`` to the other tool."""
            ''',
        )
        assert rules_hit(path, "RPR005") == []


class TestExceptionHygieneRPR006:
    def test_bare_except_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def f():
                try:
                    g()
                except:
                    handle()
            """,
        )
        report = lint_paths([path], rule_ids=["RPR006"])
        (finding,) = report.findings
        assert "bare" in finding.message

    def test_swallowed_exception_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "traces/x.py",
            """\
            def f():
                try:
                    g()
                except ValueError:
                    pass
            """,
        )
        report = lint_paths([path], rule_ids=["RPR006"])
        (finding,) = report.findings
        assert "swallowed" in finding.message

    def test_ellipsis_body_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                except OSError:
                    ...
            """,
        )
        assert rules_hit(path, "RPR006") == ["RPR006"]

    def test_serve_scope_covered(self, tmp_path):
        # The serving layer is in RPR006 scope: a swallowed exception in
        # journal/recovery code is a durability hole, not a style nit.
        path = write(
            tmp_path,
            "serve/journal.py",
            """\
            def recover():
                try:
                    replay()
                except OSError:
                    pass
            """,
        )
        assert rules_hit(path, "RPR006") == ["RPR006"]

    def test_broad_handler_without_raise_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                except Exception as exc:
                    record(exc)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR006"])
        (finding,) = report.findings
        assert "re-raise" in finding.message

    def test_broad_handler_with_system_exit_clean(self, tmp_path):
        # The durable worker's crash-isolation boundary: record the
        # failure, then die loudly. SystemExit counts as a raise.
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                except Exception as exc:
                    record(exc)
                    raise SystemExit(1)
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_broad_handler_with_conditional_raise_clean(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f(on_error):
                try:
                    g()
                except Exception as exc:
                    if on_error == "raise":
                        raise
                    record(exc)
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_raise_inside_nested_def_does_not_count(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/x.py",
            """\
            def f():
                try:
                    g()
                except Exception as exc:
                    def later():
                        raise RuntimeError("never fires here")
                    record(later)
            """,
        )
        assert rules_hit(path, "RPR006") == ["RPR006"]

    def test_narrow_recording_handler_clean(self, tmp_path):
        path = write(
            tmp_path,
            "traces/x.py",
            """\
            def f(report):
                try:
                    g()
                except ValueError as exc:
                    report.record_issue(exc)
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_waiver_with_reason_accepted(self, tmp_path):
        path = write(
            tmp_path,
            "experiments/x.py",
            """\
            def f():
                try:
                    g()
                # repro: lint-ok[RPR006] failure already recorded upstream
                except OSError:
                    pass
            """,
        )
        assert rules_hit(path, "RPR006") == []

    def test_out_of_scope_module_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "obs/x.py",
            """\
            def f():
                try:
                    g()
                except ValueError:
                    pass
            """,
        )
        assert rules_hit(path, "RPR006") == []


class TestLockDisciplineRPR008:
    GUARDED = textwrap.dedent(
        """\
        import threading

        class Manager:
            def __init__(self):
                self._lock = threading.Lock()
                self._sessions = {}

            def add(self, sid):
                with self._lock:
                    self._sessions[sid] = 1

            def list(self):
                with self._lock:
                    return sorted(self._sessions)
        """
    )

    def broken(self, old: str, new: str) -> str:
        source = self.GUARDED.replace(old, new)
        assert source != self.GUARDED, "fixture edit did not apply"
        return source

    def test_guarded_accesses_clean(self, tmp_path):
        path = write(tmp_path, "serve/app.py", self.GUARDED)
        assert rules_hit(path, "RPR008") == []

    def test_unlocked_read_flagged(self, tmp_path):
        source = self.broken(
            "        with self._lock:\n"
            "            return sorted(self._sessions)",
            "        return sorted(self._sessions)",
        )
        path = write(tmp_path, "serve/app.py", source)
        report = lint_paths([path], rule_ids=["RPR008"])
        (finding,) = report.findings
        assert "unlocked read of shared Manager._sessions" in finding.message

    def test_unlocked_write_flagged(self, tmp_path):
        source = self.broken(
            "        with self._lock:\n"
            "            self._sessions[sid] = 1",
            "        self._sessions[sid] = 1",
        )
        path = write(tmp_path, "serve/app.py", source)
        report = lint_paths([path], rule_ids=["RPR008"])
        (finding,) = report.findings
        assert "unlocked" in finding.message
        assert "with self._lock:" in finding.message

    def test_waiver_with_reason_accepted(self, tmp_path):
        source = self.broken(
            "        with self._lock:\n"
            "            return sorted(self._sessions)",
            "        # repro: lint-ok[RPR008] single-threaded setup phase\n"
            "        return sorted(self._sessions)",
        )
        path = write(tmp_path, "serve/app.py", source)
        assert rules_hit(path, "RPR008") == []

    def test_wrong_lock_does_not_count(self, tmp_path):
        # Holding another object's lock is not holding the owner's.
        path = write(
            tmp_path,
            "serve/app.py",
            """\
            import threading

            class Inner:
                def __init__(self):
                    self.lock = threading.Lock()

            class Manager:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._sessions = {}
                    self.inner = Inner()

                def list(self):
                    with self.inner.lock:
                        return sorted(self._sessions)
            """,
        )
        assert rules_hit(path, "RPR008") == ["RPR008"]

    def test_inconsistent_lock_order_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "serve/app.py",
            """\
            import threading

            class Manager:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()

                def one(self):
                    with self._a:
                        with self._b:
                            pass

                def two(self):
                    with self._b:
                        with self._a:
                            pass
            """,
        )
        report = lint_paths([path], rule_ids=["RPR008"])
        (finding,) = report.findings
        assert "inconsistent lock order" in finding.message
        assert "ABBA" in finding.message

    def test_daemon_write_vs_snapshot_flagged(self, tmp_path):
        # Worker itself has no lock — the daemon-vs-snapshot check still
        # fires on the torn-read shape (Registry exists because the rule
        # only engages when the scope has at least one guarded class).
        path = write(
            tmp_path,
            "serve/ticker.py",
            """\
            import threading

            class Registry:
                def __init__(self):
                    self.lock = threading.Lock()
                    self.items = {}

            class Worker:
                def __init__(self):
                    self.count = 0
                    self.thread = threading.Thread(
                        target=self._run, daemon=True
                    )

                def _run(self):
                    self.count = self.count + 1

                def snapshot(self):
                    return self.count
            """,
        )
        report = lint_paths([path], rule_ids=["RPR008"])
        (finding,) = report.findings
        assert "daemon thread Worker._run" in finding.message
        assert "snapshot()" in finding.message

    def test_out_of_scope_module_exempt(self, tmp_path):
        source = self.GUARDED.replace(
            "        with self._lock:\n"
            "            return sorted(self._sessions)",
            "        return sorted(self._sessions)",
        )
        path = write(tmp_path, "runtime/app.py", source)
        assert rules_hit(path, "RPR008") == []


class TestRealServeFixtureCopyRPR008:
    """The acceptance fixture: the real serving layer's lock usage,
    copied verbatim, then broken."""

    @pytest.fixture
    def app_copy(self, tmp_path):
        target = tmp_path / "serve" / "app.py"
        target.parent.mkdir(parents=True)
        shutil.copy(REPRO_ROOT / "serve" / "app.py", target)
        return target

    def test_pristine_copy_is_clean(self, app_copy):
        assert rules_hit(app_copy, "RPR008") == []

    def test_removed_registry_lock_caught(self, app_copy):
        source = app_copy.read_text()
        broken = source.replace(
            "        with self._registry_lock:\n"
            "            sids = sorted(self._sessions)",
            "        sids = sorted(self._sessions)",
        )
        assert broken != source, "expected list() guard not found"
        app_copy.write_text(broken)
        report = lint_paths([app_copy], rule_ids=["RPR008"])
        assert [f.rule for f in report.findings] == ["RPR008"]
        assert "_sessions" in report.findings[0].message


class TestColumnarHygieneRPR009:
    def test_hot_path_fleet_range_loop_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/fleet.py",
            """\
            def step(n_fn):
                total = 0
                for fid in range(n_fn):
                    total += fid
                return total
            """,
        )
        report = lint_paths([path], rule_ids=["RPR009"])
        (finding,) = report.findings
        assert "hot path step()" in finding.message
        assert "fleet cardinality" in finding.message

    def test_hot_path_tolist_loop_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/columnar.py",
            """\
            import numpy as np

            def serve(cold):
                for i in np.flatnonzero(cold).tolist():
                    handle(i)
            """,
        )
        report = lint_paths([path], rule_ids=["RPR009"])
        (finding,) = report.findings
        assert ".tolist()" in finding.message

    def test_same_loop_outside_hot_path_clean(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/fleet.py",
            """\
            def build_tables(n_fn):
                out = []
                for fid in range(n_fn):
                    out.append(fid)
                return out
            """,
        )
        assert rules_hit(path, "RPR009") == []

    def test_waiver_with_reason_accepted(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/fleet.py",
            """\
            def step(n_fn, pool):
                # repro: lint-ok[RPR009] compat mode only (pool attached)
                for fid in range(n_fn):
                    pool.touch(fid)
            """,
        )
        assert rules_hit(path, "RPR009") == []

    def test_narrow_dtype_arithmetic_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/columnar.py",
            """\
            import numpy as np

            def plan(n):
                levels = np.full(n, 0, dtype=np.int8)
                return levels + 1
            """,
        )
        report = lint_paths([path], rule_ids=["RPR009"])
        (finding,) = report.findings
        assert "int8" in finding.message
        assert "overflow" in finding.message

    def test_widened_arithmetic_clean(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/columnar.py",
            """\
            import numpy as np

            def plan(n):
                levels = np.full(n, 0, dtype=np.int8)
                return levels.astype(np.int64) + 1
            """,
        )
        assert rules_hit(path, "RPR009") == []

    def test_unstable_argsort_flagged_stable_clean(self, tmp_path):
        bad = write(
            tmp_path,
            "a/columnar.py",
            """\
            def rank(scores):
                return scores.argsort()
            """,
        )
        good = write(
            tmp_path,
            "b/columnar.py",
            """\
            def rank(scores):
                return scores.argsort(kind="stable")
            """,
        )
        assert rules_hit(bad, "RPR009") == ["RPR009"]
        assert rules_hit(good, "RPR009") == []

    def test_argpartition_carveout_needs_stable_argsort(self, tmp_path):
        bare = write(
            tmp_path,
            "a/columnar.py",
            """\
            import numpy as np

            def top_k(scores, k):
                return np.argpartition(scores, k)[:k]
            """,
        )
        reordered = write(
            tmp_path,
            "b/columnar.py",
            """\
            import numpy as np

            def top_k(scores, k):
                rough = np.argpartition(scores, k)[:k]
                return rough[scores[rough].argsort(kind="stable")]
            """,
        )
        report = lint_paths([bare], rule_ids=["RPR009"])
        (finding,) = report.findings
        assert "carve-out" in finding.message
        assert rules_hit(reordered, "RPR009") == []

    def test_hot_path_unordered_float_sum_flagged(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/fleet.py",
            """\
            import numpy as np

            def step(n):
                vals = np.zeros(n)
                return vals.sum()
            """,
        )
        report = lint_paths([path], rule_ids=["RPR009"])
        (finding,) = report.findings
        assert "unordered float reduction" in finding.message

    def test_axis_sum_and_int_sum_clean(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/fleet.py",
            """\
            import numpy as np

            def step(n):
                grid = np.zeros((n, 4))
                counts = np.zeros(n, dtype=np.int64)
                return grid.sum(axis=0), counts.sum()
            """,
        )
        assert rules_hit(path, "RPR009") == []

    def test_out_of_scope_basename_exempt(self, tmp_path):
        path = write(
            tmp_path,
            "runtime/planner.py",
            """\
            def step(n_fn):
                for fid in range(n_fn):
                    pass
            """,
        )
        assert rules_hit(path, "RPR009") == []


CHECKPOINT_FIXTURE = """\
# v1: initial snapshot schema.
CHECKPOINT_SCHEMA_VERSION = 1

SNAPSHOT_FIELDS = {
    "reference": frozenset({"policy", "pool"}),
}

STATE_FIELDS = (
    ("engine", "str"),
    ("payload", "bytes"),
)


class SimulationState:
    engine: str
    payload: bytes
"""

SIMULATOR_FIXTURE = """\
class Sim:
    def live_state(self):
        return {"policy": self.policy, "pool": self.pool}
"""


class TestSnapshotSchemaRPR010:
    def pair(self, tmp_path, checkpoint=CHECKPOINT_FIXTURE,
             sim=SIMULATOR_FIXTURE):
        return [
            write(tmp_path, "runtime/checkpoint.py", checkpoint),
            write(tmp_path, "runtime/simulator.py", sim),
        ]

    def test_matching_manifest_clean(self, tmp_path):
        assert rules_hit(self.pair(tmp_path), "RPR010") == []

    def test_removed_snapshot_field_without_bump_caught(self, tmp_path):
        # The acceptance fixture: drop a live_state key, leave the
        # manifest (and version) alone.
        sim = SIMULATOR_FIXTURE.replace(', "pool": self.pool', "")
        paths = self.pair(tmp_path, sim=sim)
        report = lint_paths(paths, rule_ids=["RPR010"])
        (finding,) = report.findings
        assert "drifted from SNAPSHOT_FIELDS" in finding.message
        assert "removed: pool" in finding.message

    def test_added_snapshot_field_caught(self, tmp_path):
        sim = SIMULATOR_FIXTURE.replace(
            '"pool": self.pool', '"pool": self.pool, "rng": self.rng'
        )
        report = lint_paths(self.pair(tmp_path, sim=sim), rule_ids=["RPR010"])
        (finding,) = report.findings
        assert "added: rng" in finding.message

    def test_version_bump_without_migration_note_caught(self, tmp_path):
        checkpoint = CHECKPOINT_FIXTURE.replace(
            "CHECKPOINT_SCHEMA_VERSION = 1", "CHECKPOINT_SCHEMA_VERSION = 2"
        )
        report = lint_paths(
            self.pair(tmp_path, checkpoint=checkpoint), rule_ids=["RPR010"]
        )
        (finding,) = report.findings
        assert "no 'v2:' migration note" in finding.message

    def test_state_class_drift_caught(self, tmp_path):
        checkpoint = CHECKPOINT_FIXTURE.replace(
            "    payload: bytes", "    payload: str"
        )
        report = lint_paths(
            self.pair(tmp_path, checkpoint=checkpoint), rule_ids=["RPR010"]
        )
        (finding,) = report.findings
        assert "SimulationState fields" in finding.message
        assert "drifted from STATE_FIELDS" in finding.message

    def test_missing_manifest_with_engines_caught(self, tmp_path):
        checkpoint = (
            "# v1: initial snapshot schema.\n"
            "CHECKPOINT_SCHEMA_VERSION = 1\n"
        )
        report = lint_paths(
            self.pair(tmp_path, checkpoint=checkpoint), rule_ids=["RPR010"]
        )
        messages = [f.message for f in report.findings]
        assert any("no SNAPSHOT_FIELDS manifest" in m for m in messages)

    def test_directory_without_checkpoint_skipped(self, tmp_path):
        path = write(tmp_path, "obs/fleet.py", SIMULATOR_FIXTURE)
        assert rules_hit(path, "RPR010") == []


WIRE_CHECKPOINT_FIXTURE = CHECKPOINT_FIXTURE + """\

WIRE_FIELDS = ("format", "payload_b64")


def to_wire_json(self):
    return dumps({"format": WIRE_FORMAT, "payload_b64": encode(self)})
"""


class TestWireEnvelopeRPR010:
    """The JSON wire envelope's key set is schema, same as live_state."""

    def pair(self, tmp_path, checkpoint=WIRE_CHECKPOINT_FIXTURE):
        return [
            write(tmp_path, "runtime/checkpoint.py", checkpoint),
            write(tmp_path, "runtime/simulator.py", SIMULATOR_FIXTURE),
        ]

    def test_matching_envelope_clean(self, tmp_path):
        assert rules_hit(self.pair(tmp_path), "RPR010") == []

    def test_envelope_key_drift_caught(self, tmp_path):
        checkpoint = WIRE_CHECKPOINT_FIXTURE.replace(
            '"payload_b64": encode(self)',
            '"payload": encode(self)',
        )
        report = lint_paths(
            self.pair(tmp_path, checkpoint=checkpoint), rule_ids=["RPR010"]
        )
        (finding,) = report.findings
        assert "drifted from WIRE_FIELDS" in finding.message
        assert "added: payload" in finding.message
        assert "removed: payload_b64" in finding.message

    def test_codec_without_manifest_caught(self, tmp_path):
        checkpoint = WIRE_CHECKPOINT_FIXTURE.replace(
            'WIRE_FIELDS = ("format", "payload_b64")\n', ""
        )
        report = lint_paths(
            self.pair(tmp_path, checkpoint=checkpoint), rule_ids=["RPR010"]
        )
        (finding,) = report.findings
        assert "no WIRE_FIELDS manifest" in finding.message

    def test_checkpoint_without_codec_needs_no_manifest(self, tmp_path):
        # The base fixture has neither codec nor WIRE_FIELDS — clean.
        assert rules_hit(
            self.pair(tmp_path, checkpoint=CHECKPOINT_FIXTURE), "RPR010"
        ) == []


class TestFleetReducerCarveoutRPR002:
    """The two reducer emit sites are carved out in the rule itself —
    not re-waived at every call site."""

    def test_carveout_list_is_pinned(self):
        from repro.analysis.rules.parity import FLEET_REDUCER_CARVEOUTS

        assert FLEET_REDUCER_CARVEOUTS == frozenset(
            {"record_peak", "record_downgrade"}
        )

    def trio(self, tmp_path, sim_extra="", fleet_extra=""):
        sim = write(
            tmp_path,
            "runtime/simulator.py",
            SIM_TEMPLATE + sim_extra,
        )
        fleet = write(
            tmp_path,
            "runtime/fleet.py",
            FAST_TEMPLATE.replace("def run(", "def fleet_run(") + fleet_extra,
        )
        return [sim, fleet]

    def test_fleet_side_carveout_names_exempt(self, tmp_path):
        paths = self.trio(
            tmp_path,
            fleet_extra=(
                "\n"
                "def reduce(rec, priority):\n"
                "    rec.record_peak(1, 2, 3, 4)\n"
                "    priority.record_downgrade(0)\n"
            ),
        )
        assert rules_hit(paths, "RPR002") == []

    def test_other_fleet_side_hooks_still_flagged(self, tmp_path):
        paths = self.trio(
            tmp_path,
            fleet_extra=(
                "\ndef reduce(rec):\n    rec.record_slow(1)\n"
            ),
        )
        report = lint_paths(paths, rule_ids=["RPR002"])
        (finding,) = report.findings
        assert "record_slow" in finding.message

    def test_carveout_names_one_sided_in_simulator_flagged(self, tmp_path):
        # The exemption is fleet-side only: the same names one-sided in
        # the reference loop are a real asymmetry.
        paths = self.trio(
            tmp_path,
            sim_extra=(
                "\ndef review(rec):\n    rec.record_peak(1, 2, 3, 4)\n"
            ),
        )
        report = lint_paths(paths, rule_ids=["RPR002"])
        assert [f.rule for f in report.findings] == ["RPR002"]
        assert "record_peak" in report.findings[0].message


class TestShippedTreeSelfCheck:
    def test_repro_lints_clean(self):
        report = lint_paths([REPRO_ROOT])
        assert report.findings == [], [str(f) for f in report.findings]
        assert report.exit_code == 0
        # The full pack ran — RPR001 through RPR010.
        assert report.rule_ids == [f"RPR{n:03d}" for n in range(1, 11)]
