"""repro.api: the policy registry and the simulate facade."""

from __future__ import annotations

import pickle
from functools import partial

import pytest

from repro.api import (
    PolicySpec,
    list_policies,
    make_policy,
    policy_spec,
    register_policy,
    run_sweep,
    simulate,
)
from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.faults.isolation import ResilientPolicy
from repro.faults.plan import FaultPlan
from repro.runtime.simulator import Simulation, SimulationConfig


class TestRegistry:
    def test_bundled_policies_present(self):
        names = list_policies()
        for expected in (
            "pulse", "pulse-t2", "openwhisk", "all-low", "random-mixed",
            "ideal", "wild", "icebreaker", "wild+pulse", "icebreaker+pulse",
            "milp",
        ):
            assert expected in names

    def test_make_policy_constructs_fresh_instances(self):
        a, b = make_policy("pulse"), make_policy("pulse")
        assert isinstance(a, PulsePolicy)
        assert a is not b

    def test_make_policy_kwargs_pass_through(self):
        policy = make_policy(
            "pulse", config=PulseConfig(threshold_scheme="T2")
        )
        assert policy.config.threshold_scheme == "T2"

    def test_make_policy_resilient_wraps(self):
        policy = make_policy("openwhisk", resilient=True)
        assert isinstance(policy, ResilientPolicy)
        assert policy.name == OpenWhiskPolicy().name

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="pulse"):
            make_policy("does-not-exist")

    def test_keep_alive_windows(self):
        assert policy_spec("pulse").keep_alive_window == 10
        assert policy_spec("openwhisk").keep_alive_window == 10
        for name in ("wild", "icebreaker", "wild+pulse", "icebreaker+pulse"):
            assert policy_spec(name).keep_alive_window == 240

    def test_register_rejects_non_spec(self):
        with pytest.raises(TypeError):
            register_policy(OpenWhiskPolicy)

    def test_factories_are_picklable(self):
        # Sweep factories fan out over process pools.
        factory = partial(make_policy, "pulse", resilient=True)
        rebuilt = pickle.loads(pickle.dumps(factory))
        assert isinstance(rebuilt(), ResilientPolicy)
        for name in list_policies():
            pickle.dumps(policy_spec(name).factory)

    def test_register_custom_policy(self):
        spec = PolicySpec(
            "test-custom", lambda **kw: OpenWhiskPolicy(**kw), "test entry"
        )
        try:
            register_policy(spec)
            assert "test-custom" in list_policies()
            assert isinstance(make_policy("test-custom"), OpenWhiskPolicy)
        finally:
            from repro.api import _REGISTRY

            _REGISTRY.pop("test-custom", None)


class TestSimulateFacade:
    def test_name_matches_manual_construction(self, small_trace, assignment):
        via_facade = simulate(small_trace, assignment=assignment, policy="openwhisk")
        manual = Simulation(
            small_trace, assignment, OpenWhiskPolicy(), SimulationConfig()
        ).run(engine="auto")
        assert via_facade.total_service_time_s == manual.total_service_time_s
        assert via_facade.keepalive_cost_usd == manual.keepalive_cost_usd
        assert via_facade.mean_accuracy == manual.mean_accuracy

    def test_engines_agree(self, small_trace, assignment):
        ref = simulate(
            small_trace, assignment=assignment, policy="pulse",
            engine="reference",
        )
        fast = simulate(
            small_trace, assignment=assignment, policy="pulse",
            engine="fast",
        )
        assert ref.total_service_time_s == fast.total_service_time_s
        assert ref.keepalive_cost_usd == fast.keepalive_cost_usd

    def test_policy_instance_accepted(self, small_trace, assignment):
        r = simulate(
            small_trace, assignment=assignment, policy=OpenWhiskPolicy()
        )
        assert r.policy_name == "OpenWhisk"

    def test_long_window_policy_gets_its_window(self, small_trace, assignment):
        # "wild" plans 4-hour windows; the facade must run it at 240.
        policy = make_policy("wild")
        simulate(
            small_trace, assignment=assignment, policy="wild"
        )  # must not truncate
        r240 = Simulation(
            small_trace, assignment, policy,
            SimulationConfig(keep_alive_window=240),
        ).run(engine="auto")
        via = simulate(small_trace, assignment=assignment, policy="wild")
        assert via.keepalive_cost_usd == r240.keepalive_cost_usd

    def test_explicit_config_wins(self, small_trace, assignment):
        # A caller-provided config is authoritative, window included.
        r = simulate(
            small_trace, assignment=assignment, policy="openwhisk",
            config=SimulationConfig(record_series=False),
        )
        assert r.memory_series_mb is None

    def test_faults_as_plan_and_spec(self, small_trace, assignment):
        plan = FaultPlan(seed=7, spawn_failure_rate=0.3)
        via_plan = simulate(
            small_trace, assignment=assignment, policy="openwhisk", faults=plan
        )
        via_spec = simulate(
            small_trace, assignment=assignment, policy="openwhisk",
            faults="seed=7,spawn=0.3",
        )
        assert via_plan.n_spawn_failures > 0
        assert via_plan.n_spawn_failures == via_spec.n_spawn_failures
        assert via_plan.total_service_time_s == via_spec.total_service_time_s

    def test_bad_engine_rejected(self, small_trace, assignment):
        with pytest.raises(ValueError, match="engine"):
            simulate(
                small_trace, assignment=assignment, policy="openwhisk",
                engine="turbo",
            )


class TestRunSweepFacade:
    def test_in_process_sweep_records_errors(self, tiny_trace):
        from repro.experiments.runner import ExperimentConfig
        from repro.runtime.metrics import RunResult

        results = run_sweep(
            tiny_trace,
            policies=["pulse", "openwhisk"],
            config=ExperimentConfig(n_runs=2, horizon_minutes=60, seed=3),
        )
        assert sorted(results) == ["openwhisk", "pulse"]
        assert all(
            isinstance(r, RunResult)
            for runs in results.values()
            for r in runs
        )

    def test_unknown_policy_fails_fast(self, tiny_trace):
        with pytest.raises(ValueError, match="unknown policy"):
            run_sweep(tiny_trace, policies=["nope"])

    def test_durable_knobs_require_durable(self, tiny_trace, tmp_path):
        with pytest.raises(ValueError, match="durable=True"):
            run_sweep(tiny_trace, policies=["pulse"], out_dir=tmp_path)

    def test_durable_requires_out_dir(self, tiny_trace):
        with pytest.raises(ValueError, match="out_dir"):
            run_sweep(tiny_trace, policies=["pulse"], durable=True)

    def test_durable_sweep_end_to_end(self, tiny_trace, tmp_path):
        from repro.experiments.runner import ExperimentConfig

        result = run_sweep(
            tiny_trace,
            policies=["pulse"],
            config=ExperimentConfig(
                n_runs=2, horizon_minutes=60, seed=3, engine="fast"
            ),
            durable=True,
            out_dir=tmp_path,
        )
        assert result.ok
        assert (tmp_path / "manifest.json").exists()
        # resume-by-path of a finished sweep is a no-op that reloads
        resumed = run_sweep(
            tiny_trace,
            policies=["pulse"],
            config=ExperimentConfig(
                n_runs=2, horizon_minutes=60, seed=3, engine="fast"
            ),
            durable=True,
            resume=tmp_path / "manifest.json",
        )
        assert resumed.ok
        assert resumed.summaries == result.summaries
