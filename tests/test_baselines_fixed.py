"""Tests for repro.baselines.openwhisk and the fixed-policy family."""

import numpy as np
import pytest

from repro.baselines.openwhisk import FixedKeepAlivePolicy, OpenWhiskPolicy
from repro.runtime.simulator import Simulation
from repro.traces.schema import FunctionSpec, Trace


def one_function_trace(counts):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


class TestFixedKeepAlive:
    def test_openwhisk_uses_highest(self, gpt):
        trace = one_function_trace([1, 0])
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        assert r.mean_accuracy == pytest.approx(gpt.highest.accuracy)
        assert r.policy_name == "OpenWhisk"

    def test_lowest_level(self, gpt):
        trace = one_function_trace([1, 0])
        r = Simulation(trace, {0: gpt}, FixedKeepAlivePolicy("lowest")).run()
        assert r.mean_accuracy == pytest.approx(gpt.lowest.accuracy)

    def test_explicit_int_level(self, gpt):
        trace = one_function_trace([1, 0])
        r = Simulation(trace, {0: gpt}, FixedKeepAlivePolicy(1)).run()
        assert r.mean_accuracy == pytest.approx(gpt.variant(1).accuracy)

    def test_int_level_clamped_to_family(self, bert):
        trace = one_function_trace([1, 0])
        r = Simulation(trace, {0: bert}, FixedKeepAlivePolicy(5)).run()
        assert r.mean_accuracy == pytest.approx(bert.highest.accuracy)

    def test_invalid_levels_rejected(self):
        with pytest.raises(ValueError):
            FixedKeepAlivePolicy("median")
        with pytest.raises(ValueError):
            FixedKeepAlivePolicy(-1)
        with pytest.raises(ValueError):
            FixedKeepAlivePolicy(True)

    def test_full_window_kept(self, gpt):
        trace = one_function_trace([1] + [0] * 15)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        mem = r.memory_series_mb
        assert all(mem[t] > 0 for t in range(11))
        assert mem[11] == 0

    def test_not_an_oracle(self):
        assert OpenWhiskPolicy().is_oracle is False
