"""Tests for repro.baselines.static and repro.baselines.ideal."""

import numpy as np
import pytest

from repro.baselines.ideal import IdealOraclePolicy
from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.baselines.static import (
    AllLowQualityPolicy,
    IntelligentOraclePolicy,
    RandomMixedPolicy,
)
from repro.runtime.simulator import Simulation
from repro.traces.schema import FunctionSpec, Trace


def make_trace(counts):
    counts = np.asarray(counts, dtype=np.int64)
    specs = tuple(FunctionSpec(i, f"f{i}") for i in range(counts.shape[0]))
    return Trace(counts=counts, functions=specs)


class TestAllLow:
    def test_serves_lowest(self, gpt):
        trace = make_trace([[1, 0, 1]])
        r = Simulation(trace, {0: gpt}, AllLowQualityPolicy()).run()
        assert r.mean_accuracy == pytest.approx(gpt.lowest.accuracy)

    def test_cheapest_fixed_policy(self, small_trace, assignment):
        low = Simulation(small_trace, assignment, AllLowQualityPolicy()).run()
        high = Simulation(small_trace, assignment, OpenWhiskPolicy()).run()
        assert low.keepalive_cost_usd < high.keepalive_cost_usd
        assert low.total_service_time_s < high.total_service_time_s
        assert low.mean_accuracy < high.mean_accuracy


class TestRandomMixed:
    def test_split_is_balanced(self, small_trace, assignment):
        p = RandomMixedPolicy(seed=3)
        p.bind(small_trace, assignment, 10)
        n = small_trace.n_functions
        assert len(p._high_functions) == (n + 1) // 2

    def test_metrics_between_extremes(self, small_trace, assignment):
        mixed = Simulation(small_trace, assignment, RandomMixedPolicy(seed=3)).run()
        low = Simulation(small_trace, assignment, AllLowQualityPolicy()).run()
        high = Simulation(small_trace, assignment, OpenWhiskPolicy()).run()
        assert low.keepalive_cost_usd <= mixed.keepalive_cost_usd <= high.keepalive_cost_usd
        assert low.mean_accuracy <= mixed.mean_accuracy <= high.mean_accuracy

    def test_seed_controls_split(self, small_trace, assignment):
        a = RandomMixedPolicy(seed=1)
        b = RandomMixedPolicy(seed=1)
        c = RandomMixedPolicy(seed=2)
        for p in (a, b, c):
            p.bind(small_trace, assignment, 10)
        assert a._high_functions == b._high_functions
        assert a._high_functions != c._high_functions


class TestIntelligentOracle:
    def test_is_marked_oracle(self):
        assert IntelligentOraclePolicy().is_oracle

    def test_high_quality_when_future_is_busy(self, gpt):
        counts = np.zeros((1, 30), dtype=np.int64)
        counts[0, [0, 2, 3, 4]] = 1  # busy right after the first invocation
        trace = make_trace(counts)
        r = Simulation(
            trace, {0: gpt}, IntelligentOraclePolicy(high_threshold=1)
        ).run()
        assert r.mean_accuracy == pytest.approx(gpt.highest.accuracy)

    def test_low_quality_when_future_is_quiet(self, gpt):
        counts = np.zeros((1, 40), dtype=np.int64)
        counts[0, [0, 25]] = 1  # nothing within the window
        trace = make_trace(counts)
        r = Simulation(trace, {0: gpt}, IntelligentOraclePolicy()).run()
        # Both invocations are cold starts of the oracle's chosen (low)
        # variant: the window never holds a busy future.
        assert r.mean_accuracy == pytest.approx(gpt.lowest.accuracy)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            IntelligentOraclePolicy(high_threshold=0)


class TestIdealOracle:
    def test_no_idle_memory(self, gpt):
        counts = np.zeros((1, 30), dtype=np.int64)
        counts[0, [0, 4, 9]] = 1
        trace = make_trace(counts)
        r = Simulation(trace, {0: gpt}, IdealOraclePolicy()).run()
        mem = r.memory_series_mb
        np.testing.assert_array_equal(mem > 0, trace.counts[0] > 0)

    def test_all_but_first_warm_when_gaps_small(self, gpt):
        counts = np.zeros((1, 30), dtype=np.int64)
        counts[0, [0, 4, 9, 12]] = 1
        trace = make_trace(counts)
        r = Simulation(trace, {0: gpt}, IdealOraclePolicy()).run()
        assert r.n_cold == 1
        assert r.n_warm == 3

    def test_ideal_cost_matches_engine_ideal_series(self, gpt):
        counts = np.zeros((1, 30), dtype=np.int64)
        counts[0, [0, 4, 9]] = 1
        trace = make_trace(counts)
        r = Simulation(trace, {0: gpt}, IdealOraclePolicy()).run()
        np.testing.assert_allclose(r.memory_series_mb, r.ideal_memory_series_mb)

    def test_cheaper_than_any_honest_policy(self, small_trace, assignment):
        ideal = Simulation(small_trace, assignment, IdealOraclePolicy()).run()
        ow = Simulation(small_trace, assignment, OpenWhiskPolicy()).run()
        assert ideal.keepalive_cost_usd < ow.keepalive_cost_usd
