"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.traces.azure import write_azure_csv
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "pulse", "openwhisk", "--horizon", "100"]
        )
        assert args.policies == ["pulse", "openwhisk"]
        assert args.horizon == 100

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "sorcery"])

    def test_reproduce_choices(self):
        args = build_parser().parse_args(["reproduce", "fig6"])
        assert args.experiment == "fig6"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "fig99"])


class TestCommands:
    def test_simulate_prints_table(self, capsys):
        rc = main(["simulate", "pulse", "all-low", "--horizon", "240", "--seed", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "PULSE" in out
        assert "all-low" in out
        assert "keepalive_cost_usd" in out

    def test_simulate_long_window_policy(self, capsys):
        rc = main(["simulate", "wild", "--horizon", "240", "--seed", "5"])
        assert rc == 0
        assert "Wild" in capsys.readouterr().out

    def test_profile(self, capsys):
        rc = main(["profile", "--warm-samples", "20", "--cold-samples", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "GPT-Large" in out

    def test_trace_summary_and_export(self, capsys, tmp_path):
        rc = main(["trace", "--horizon", "240", "--export", str(tmp_path / "out")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Per-function activity" in out
        assert (tmp_path / "out").exists()

    def test_trace_loads_azure_csv(self, capsys, tmp_path):
        trace = generate_trace(SyntheticTraceConfig(horizon_minutes=200, seed=1))
        paths = write_azure_csv(trace, tmp_path)
        rc = main(
            ["trace", "--azure-csv", *[str(p) for p in paths], "--functions", "4"]
        )
        assert rc == 0
        assert "Per-function activity" in capsys.readouterr().out

    @pytest.mark.parametrize("experiment", ["fig1", "fig2", "tables2-3", "fig5"])
    def test_reproduce_fast_experiments(self, capsys, experiment):
        rc = main(
            ["reproduce", experiment, "--horizon", "480", "--runs", "1", "--seed", "2"]
        )
        assert rc == 0
        assert capsys.readouterr().out.strip()

    def test_reproduce_fig6(self, capsys):
        rc = main(["reproduce", "fig6", "--horizon", "360", "--runs", "1"])
        assert rc == 0
        assert "keepalive_cost" in capsys.readouterr().out
