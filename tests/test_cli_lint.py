"""The ``repro lint`` subcommand: exit codes, formats, rule selection."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.utils.specs import SpecError


@pytest.fixture()
def planted_dir(tmp_path: Path) -> Path:
    """A sandbox with one determinism violation under runtime/."""
    bad = tmp_path / "runtime" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """\
            import random

            def draw():
                return random.random()
            """
        )
    )
    return tmp_path


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.format == "text"
        assert args.rule is None

    def test_lint_accepts_paths_rules_format(self):
        args = build_parser().parse_args(
            ["lint", "src", "tests", "--rule", "RPR001", "--format", "json"]
        )
        assert args.paths == ["src", "tests"]
        assert args.rule == ["RPR001"]
        assert args.format == "json"

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "yaml"])


class TestLintCommand:
    def test_shipped_tree_exits_zero(self, capsys):
        # The ISSUE acceptance criterion: the tree we ship lints clean.
        rc = main(["lint"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_planted_violation_exits_nonzero(self, planted_dir, capsys):
        rc = main(["lint", str(planted_dir)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "bad.py" in out

    def test_json_format_is_machine_readable(self, planted_dir, capsys):
        rc = main(["lint", "--format", "json", str(planted_dir)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False
        assert {f["rule"] for f in doc["findings"]} == {"RPR001"}

    def test_rule_filter_narrows_the_run(self, planted_dir):
        assert main(["lint", "--rule", "RPR002", str(planted_dir)]) == 0
        assert main(["lint", "--rule", "rpr001", str(planted_dir)]) == 1

    def test_rule_filter_accepts_comma_lists(self, planted_dir):
        assert main(["lint", "--rule", "rpr002,RPR004", str(planted_dir)]) == 0

    def test_unknown_rule_is_a_spec_error(self, planted_dir):
        with pytest.raises(SpecError, match="RPR999"):
            main(["lint", "--rule", "RPR999", str(planted_dir)])

    def test_nonexistent_path_is_a_spec_error(self):
        with pytest.raises(SpecError, match="does not exist"):
            main(["lint", "/no/such/tree"])
