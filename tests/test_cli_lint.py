"""The ``repro lint`` subcommand: exit codes, formats, rule selection."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.utils.specs import SpecError


@pytest.fixture()
def planted_dir(tmp_path: Path) -> Path:
    """A sandbox with one determinism violation under runtime/."""
    bad = tmp_path / "runtime" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """\
            import random

            def draw():
                return random.random()
            """
        )
    )
    return tmp_path


class TestParser:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.format == "text"
        assert args.rule is None

    def test_lint_accepts_paths_rules_format(self):
        args = build_parser().parse_args(
            ["lint", "src", "tests", "--rule", "RPR001", "--format", "json"]
        )
        assert args.paths == ["src", "tests"]
        assert args.rule == ["RPR001"]
        assert args.format == "json"

    def test_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--format", "yaml"])


class TestLintCommand:
    def test_shipped_tree_exits_zero(self, capsys):
        # The ISSUE acceptance criterion: the tree we ship lints clean.
        rc = main(["lint"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out

    def test_planted_violation_exits_nonzero(self, planted_dir, capsys):
        rc = main(["lint", str(planted_dir)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "bad.py" in out

    def test_json_format_is_machine_readable(self, planted_dir, capsys):
        rc = main(["lint", "--format", "json", str(planted_dir)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["clean"] is False
        assert {f["rule"] for f in doc["findings"]} == {"RPR001"}

    def test_rule_filter_narrows_the_run(self, planted_dir):
        assert main(["lint", "--rule", "RPR002", str(planted_dir)]) == 0
        assert main(["lint", "--rule", "rpr001", str(planted_dir)]) == 1

    def test_rule_filter_accepts_comma_lists(self, planted_dir):
        assert main(["lint", "--rule", "rpr002,RPR004", str(planted_dir)]) == 0

    def test_unknown_rule_is_a_spec_error(self, planted_dir):
        with pytest.raises(SpecError, match="RPR999"):
            main(["lint", "--rule", "RPR999", str(planted_dir)])

    def test_nonexistent_path_is_a_spec_error(self):
        with pytest.raises(SpecError, match="does not exist"):
            main(["lint", "/no/such/tree"])

    def test_sarif_format(self, planted_dir, capsys):
        rc = main(["lint", "--format", "sarif", str(planted_dir)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert {r["ruleId"] for r in run["results"]} == {"RPR001"}

    def test_unparseable_file_exits_two(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        rc = main(["lint", str(tmp_path)])
        assert rc == 2
        assert "RPR000" in capsys.readouterr().out

    def test_explicit_file_operand_always_linted(self, planted_dir, capsys):
        # Naming the file directly lints exactly it, not its directory.
        rc = main(["lint", str(planted_dir / "runtime" / "bad.py")])
        assert rc == 1
        out = capsys.readouterr().out
        assert "1 file(s)" in out

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["lint", "--help"])
        out = capsys.readouterr().out
        assert "0 = clean" in out
        assert "1 = findings" in out
        assert "2 = engine error" in out


class TestLintIncrementalFlags:
    def test_cache_dir_warm_run_is_byte_identical(self, planted_dir, capsys):
        cache = planted_dir / ".lint-cache"
        argv = [
            "lint", "--format", "json", "--cache-dir", str(cache),
            str(planted_dir / "runtime"),
        ]
        assert main(argv) == 1
        cold = capsys.readouterr().out
        assert (cache / "lint-cache.json").exists()
        assert main(argv) == 1
        warm = capsys.readouterr().out
        assert warm == cold

    def test_jobs_fan_out_matches_serial(self, planted_dir, capsys):
        serial_argv = ["lint", "--format", "json", str(planted_dir)]
        assert main(serial_argv) == 1
        serial = capsys.readouterr().out
        assert main([*serial_argv, "--jobs", "2"]) == 1
        assert capsys.readouterr().out == serial

    def test_changed_outside_git_is_a_spec_error(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SpecError, match="git checkout"):
            main(["lint", "--changed", str(tmp_path)])

    def test_changed_narrows_to_touched_files(self, tmp_path, monkeypatch, capsys):
        import subprocess

        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=tmp_path, check=True, capture_output=True
            )

        git("init")
        git("config", "user.email", "t@example.com")
        git("config", "user.name", "t")
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n")
        tracked = tmp_path / "runtime" / "tracked.py"
        tracked.parent.mkdir()
        tracked.write_text("Y = 2\n")
        git("add", "-A")
        git("commit", "-m", "seed")

        tracked.write_text("import random\n")  # modified vs HEAD
        (tmp_path / "fresh.py").write_text("import secrets\n")  # untracked
        monkeypatch.chdir(tmp_path)

        rc = main(["lint", "--format", "json", "--changed", str(tmp_path)])
        assert rc == 1
        doc = json.loads(capsys.readouterr().out)
        # clean.py is unchanged and outside every project scope: skipped.
        assert doc["n_files"] == 2
        assert {f["rule"] for f in doc["findings"]} == {"RPR001"}
