"""Regression test: mixed-policy `simulate` must not stretch the fixed
policies' keep-alive window to the long-horizon predictors' capacity."""

from repro.cli import main


class TestPerPolicyWindows:
    def test_openwhisk_unchanged_by_wild_presence(self, capsys):
        # Run OpenWhisk alone, then together with Wild; its cost line
        # must be identical (same 10-minute keep-alive either way).
        main(["simulate", "openwhisk", "--horizon", "300", "--seed", "4"])
        alone = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("OpenWhisk")
        ][0]
        main(["simulate", "openwhisk", "wild", "--horizon", "300", "--seed", "4"])
        mixed = [
            line
            for line in capsys.readouterr().out.splitlines()
            if line.startswith("OpenWhisk")
        ][0]
        assert alone == mixed
