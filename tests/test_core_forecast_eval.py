"""Tests for repro.core.forecast_eval."""

import numpy as np
import pytest

from repro.core.forecast_eval import evaluate_estimator
from repro.traces.schema import FunctionSpec, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


def trace_of(counts_row):
    counts = np.asarray([counts_row], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


def timer_trace(period, horizon=600):
    counts = np.zeros(horizon, dtype=np.int64)
    counts[::period] = 1
    return trace_of(counts)


class TestEvaluateEstimator:
    def test_perfect_timer_is_near_perfectly_calibrated(self):
        report = evaluate_estimator(timer_trace(5))
        assert report.brier_score < 0.01
        assert report.skill > 0.9
        assert report.top_band_hit_rate > 0.95

    def test_random_arrivals_have_low_skill(self):
        rng = np.random.default_rng(0)
        counts = (rng.random(3000) < 0.15).astype(np.int64)
        report = evaluate_estimator(trace_of(counts))
        # An exact-minute forecaster cannot beat the base rate by much on
        # a memoryless process.
        assert report.skill < 0.3
        assert report.top_band_hit_rate < 0.2

    def test_timer_beats_poisson_in_skill(self):
        rng = np.random.default_rng(1)
        poisson = trace_of((rng.random(2000) < 0.2).astype(np.int64))
        timer = timer_trace(5, horizon=2000)
        assert (
            evaluate_estimator(timer).skill > evaluate_estimator(poisson).skill
        )

    def test_reliability_bins_are_calibrated_for_timer(self):
        report = evaluate_estimator(timer_trace(7, horizon=1400))
        for mean_pred, observed, n in report.reliability:
            if n > 30:
                assert abs(mean_pred - observed) < 0.15

    def test_default_mix_is_informative(self):
        trace = generate_trace(SyntheticTraceConfig(horizon_minutes=1440, seed=17))
        report = evaluate_estimator(trace)
        assert report.skill > 0.1  # clearly better than base rate overall
        assert report.n_predictions > 500

    def test_too_sparse_rejected(self):
        counts = np.zeros(50, dtype=np.int64)
        counts[10] = 1
        with pytest.raises(ValueError, match="warm-up"):
            evaluate_estimator(trace_of(counts))

    def test_bins_validated(self):
        with pytest.raises(ValueError):
            evaluate_estimator(timer_trace(5), n_bins=0)
