"""Tests for repro.core.function_optimizer."""

import pytest

from repro.core.function_optimizer import FunctionCentricOptimizer
from repro.core.interarrival import InterArrivalEstimator
from repro.core.thresholds import TechniqueT1


def feed(est, fid, minutes):
    for m in minutes:
        est.observe(fid, m)


@pytest.fixture()
def optimizer():
    est = InterArrivalEstimator(2, window=10, local_window=60, mode="exact")
    return FunctionCentricOptimizer(est, TechniqueT1())


class TestPlan:
    def test_no_history_falls_back_to_highest(self, optimizer, gpt):
        plan = optimizer.plan(0, 0, gpt)
        assert len(plan) == 10
        assert all(v == gpt.highest for v in plan)

    def test_no_history_lowest_fallback(self, gpt):
        est = InterArrivalEstimator(1)
        opt = FunctionCentricOptimizer(est, TechniqueT1(), cold_start_fallback="lowest")
        assert all(v == gpt.lowest for v in opt.plan(0, 0, gpt))

    def test_invalid_fallback_rejected(self, gpt):
        est = InterArrivalEstimator(1)
        with pytest.raises(ValueError):
            FunctionCentricOptimizer(est, TechniqueT1(), cold_start_fallback="median")

    def test_timer_gets_highest_at_modal_minute(self, optimizer, gpt):
        feed(optimizer.estimator, 0, range(0, 100, 5))
        plan = optimizer.plan(0, 95, gpt)
        assert plan[4] == gpt.highest  # offset 5: P = 1
        assert plan[0] == gpt.lowest  # offset 1: P = 0 -> lowest kept alive

    def test_t1_always_keeps_something_alive(self, optimizer, gpt):
        feed(optimizer.estimator, 0, range(0, 100, 5))
        plan = optimizer.plan(0, 95, gpt)
        assert all(v is not None for v in plan)

    def test_two_variant_family(self, optimizer, bert):
        feed(optimizer.estimator, 0, range(0, 60, 3))
        plan = optimizer.plan(0, 57, bert)
        assert plan[2] == bert.highest  # offset 3
        assert plan[0] == bert.lowest

    def test_survival_mode_gives_contiguous_durations(self, gpt):
        est = InterArrivalEstimator(1, mode="survival")
        opt = FunctionCentricOptimizer(est, TechniqueT1())
        feed(est, 0, range(0, 120, 6))
        plan = opt.plan(0, 114, gpt)
        levels = [v.level for v in plan]
        # survival probabilities are non-increasing -> levels non-increasing
        assert all(a >= b for a, b in zip(levels, levels[1:]))
        assert plan[0] == gpt.highest


class TestProbabilityQueries:
    def test_invocation_probability_passthrough(self, optimizer):
        feed(optimizer.estimator, 0, range(0, 100, 5))
        assert optimizer.invocation_probability(0, 100) == pytest.approx(1.0)

    def test_max_remaining_probability_sees_future_mode(self, optimizer):
        feed(optimizer.estimator, 0, range(0, 100, 7))
        # At offset 2 the exact probability is 0 but the mode at 7 remains.
        assert optimizer.invocation_probability(0, 100) == 0.0
        assert optimizer.max_remaining_probability(0, 100) == pytest.approx(1.0)

    def test_max_remaining_zero_beyond_window(self, optimizer):
        feed(optimizer.estimator, 0, [0, 7, 14])
        assert optimizer.max_remaining_probability(0, 40) == 0.0

    def test_max_remaining_unseen_function(self, optimizer):
        assert optimizer.max_remaining_probability(1, 50) == 0.0

    def test_max_remaining_at_arrival_minute(self, optimizer):
        feed(optimizer.estimator, 0, [0, 7])
        assert optimizer.max_remaining_probability(0, 7) == pytest.approx(1.0)
