"""Tests for repro.core.global_optimizer — Algorithm 2."""

import pytest

from repro.core.function_optimizer import FunctionCentricOptimizer
from repro.core.global_optimizer import GlobalOptimizer
from repro.core.interarrival import InterArrivalEstimator
from repro.core.peak import PeakDetector
from repro.core.priority import PriorityStructure
from repro.core.thresholds import TechniqueT1
from repro.runtime.schedule import KeepAliveSchedule


def make_gopt(n_functions=3, threshold=0.10, window=10):
    est = InterArrivalEstimator(n_functions, window=window, mode="exact")
    fopt = FunctionCentricOptimizer(est, TechniqueT1())
    return GlobalOptimizer(
        detector=PeakDetector(memory_threshold=threshold),
        priority=PriorityStructure(n_functions),
        function_optimizer=fopt,
    )


class TestReview:
    def test_no_peak_no_downgrades(self, gpt, bert):
        gopt = make_gopt()
        sched = KeepAliveSchedule(3)
        assignment = {0: gpt, 1: bert, 2: gpt}
        sched.set_plan(0, 0, [gpt.lowest] * 10)
        gopt.detector.observe(sched.memory_at(1))
        assert gopt.review(2, sched, assignment) == 0
        assert gopt.n_peak_minutes == 0

    def test_peak_triggers_downgrades(self, gpt, bert):
        gopt = make_gopt()
        sched = KeepAliveSchedule(3)
        assignment = {0: gpt, 1: bert, 2: gpt}
        # Establish a small prior, then spike with two GPT-Large plans.
        sched.set_plan(1, 0, [bert.lowest] * 10)
        gopt.detector.observe(sched.memory_at(1))
        sched.set_plan(0, 1, [gpt.highest] * 10)
        sched.set_plan(2, 1, [gpt.highest] * 10)
        n = gopt.review(2, sched, assignment)
        assert n > 0
        assert gopt.n_peak_minutes == 1
        # Memory must have been brought down toward the target.
        target = gopt.detector.flatten_target(
            bert.lowest.memory_mb
        )
        assert sched.memory_at(2) <= target or n > 0

    def test_victim_is_lowest_utility(self, gpt, bert):
        gopt = make_gopt(n_functions=2)
        sched = KeepAliveSchedule(2)
        assignment = {0: gpt, 1: bert}
        # Give fn1 (BERT) high priority so fn0 (GPT) is the victim.
        for _ in range(3):
            gopt.priority.record_downgrade(1)
        sched.set_plan(0, 0, [gpt.highest] * 10)
        sched.set_plan(1, 0, [bert.highest] * 10)
        gopt.detector.observe(100.0)  # tiny prior: everything is a peak
        gopt.review(1, sched, assignment)
        assert gopt.priority.count(0) > 0

    def test_downgraded_model_gets_priority_point(self, gpt, bert):
        gopt = make_gopt(n_functions=2)
        sched = KeepAliveSchedule(2)
        assignment = {0: gpt, 1: bert}
        sched.set_plan(0, 0, [gpt.highest] * 10)
        gopt.detector.observe(10.0)
        before = gopt.priority.counts.sum()
        n = gopt.review(1, sched, assignment)
        assert gopt.priority.counts.sum() == before + n

    def test_protected_lowest_variants_not_dropped(self, gpt, bert):
        gopt = make_gopt(n_functions=2)
        sched = KeepAliveSchedule(2)
        assignment = {0: gpt, 1: bert}
        # Both functions have arrival history giving nonzero window mass
        # (interleaved: the estimator requires global time order).
        for m in range(0, 50, 5):
            gopt.function_optimizer.estimator.observe(0, m)
            gopt.function_optimizer.estimator.observe(1, m)
        sched.set_plan(0, 45, [gpt.lowest] * 10)
        sched.set_plan(1, 45, [bert.lowest] * 10)
        gopt.detector.observe(1.0)  # absurdly low prior: unreachable target
        gopt.review(46, sched, assignment)
        # Peak cannot be flattened, but nothing was shredded.
        assert sched.alive_variant(0, 46) == gpt.lowest
        assert sched.alive_variant(1, 46) == bert.lowest

    def test_droppable_zero_probability_model_is_dropped(self, gpt, bert):
        gopt = make_gopt(n_functions=2)
        sched = KeepAliveSchedule(2)
        assignment = {0: gpt, 1: bert}
        # fn0 never observed: zero probability everywhere -> droppable.
        sched.set_plan(0, 0, [gpt.lowest] * 10)
        gopt.detector.observe(1.0)
        gopt.review(1, sched, assignment)
        assert sched.alive_variant(0, 1) is None

    def test_detector_fed_every_minute(self, gpt):
        gopt = make_gopt(n_functions=1)
        sched = KeepAliveSchedule(1)
        for t in range(5):
            gopt.review(t, sched, {0: gpt})
        assert gopt.detector.minutes_observed == 5

    def test_flatten_loop_terminates_on_unreachable_target(self, gpt):
        gopt = make_gopt(n_functions=1)
        sched = KeepAliveSchedule(1)
        # History so the model is protected (cannot flatten to target).
        for m in range(0, 30, 3):
            gopt.function_optimizer.estimator.observe(0, m)
        sched.set_plan(0, 27, [gpt.highest] * 10)
        gopt.detector.observe(0.5)
        gopt.review(28, sched, {0: gpt})  # must return, not spin
        assert sched.alive_variant(0, 28) == gpt.lowest
