"""Tests for repro.core.interarrival."""

import numpy as np
import pytest

from repro.core.interarrival import InterArrivalEstimator


def feed(est, fid, minutes):
    for m in minutes:
        est.observe(fid, m)


class TestObservation:
    def test_no_history_gives_zeros(self):
        est = InterArrivalEstimator(1)
        np.testing.assert_array_equal(est.probabilities(0, 10), np.zeros(10))

    def test_single_arrival_no_gap(self):
        est = InterArrivalEstimator(1)
        est.observe(0, 5)
        assert est.n_gaps(0) == (0, 0)
        assert est.last_arrival(0) == 5

    def test_same_minute_not_a_new_arrival(self):
        est = InterArrivalEstimator(1)
        est.observe(0, 5)
        est.observe(0, 5)
        assert est.n_gaps(0) == (0, 0)

    def test_out_of_order_rejected(self):
        est = InterArrivalEstimator(1)
        est.observe(0, 10)
        with pytest.raises(ValueError, match="time order"):
            est.observe(0, 9)

    def test_bad_fid(self):
        est = InterArrivalEstimator(2)
        with pytest.raises(IndexError):
            est.observe(2, 0)


class TestExactProbabilities:
    def test_deterministic_timer(self):
        est = InterArrivalEstimator(1, mode="exact")
        feed(est, 0, range(0, 100, 5))
        p = est.probabilities(0, 99)
        assert p[4] == pytest.approx(1.0)  # gap 5
        assert p.sum() == pytest.approx(1.0)

    def test_paper_formula_all_normalization(self):
        # Paper: "inter-arrival time of 2 appears 10 times, probability of
        # 2 is 10 divided by the total number of inter-arrival times".
        est = InterArrivalEstimator(1, local_window=10_000, mode="exact",
                                    normalization="all")
        minutes = []
        t = 0
        for _ in range(10):
            t += 2
            minutes.append(t)
        for _ in range(10):
            t += 30  # outside the window
            minutes.append(t)
        feed(est, 0, [0] + minutes)
        p = est.probabilities(0, t)
        assert p[1] == pytest.approx(10 / 20)

    def test_window_normalization_conditions_on_window(self):
        est = InterArrivalEstimator(1, local_window=10_000, mode="exact",
                                    normalization="window")
        t = 0
        minutes = [0]
        for _ in range(10):
            t += 2
            minutes.append(t)
        for _ in range(10):
            t += 30
            minutes.append(t)
        feed(est, 0, minutes)
        p = est.probabilities(0, t)
        assert p[1] == pytest.approx(1.0)  # all in-window gaps equal 2

    def test_average_of_two_periods(self):
        # Lifetime says mostly gap 2, the recent local window says gap 4.
        est = InterArrivalEstimator(1, local_window=20, mode="exact")
        t = 0
        minutes = [0]
        for _ in range(30):
            t += 2
            minutes.append(t)
        for _ in range(10):  # 40 minutes of gap-4 arrivals: fills the window
            t += 4
            minutes.append(t)
        feed(est, 0, minutes)
        p = est.probabilities(0, t)
        # Recent window holds only gap-4 arrivals; lifetime favours gap 2.
        # The average of the two periods must rank gap 4 above gap 2.
        assert p[3] > p[1]
        assert p[1] > 0  # lifetime still contributes gap-2 mass

    def test_local_window_eviction(self):
        est = InterArrivalEstimator(1, local_window=10, mode="exact")
        feed(est, 0, [0, 2, 4])
        est.probabilities(0, 100)  # far in the future: recent evicted
        assert est.n_gaps(0) == (2, 0)


class TestModes:
    @pytest.fixture()
    def est_pair(self):
        out = {}
        for mode in ("exact", "survival", "cumulative"):
            e = InterArrivalEstimator(1, mode=mode)
            feed(e, 0, [0, 3, 6, 9, 12])
            out[mode] = e
        return out

    def test_survival_monotone_nonincreasing(self, est_pair):
        p = est_pair["survival"].probabilities(0, 12)
        assert all(a >= b for a, b in zip(p, p[1:]))
        assert p[0] == pytest.approx(1.0)

    def test_cumulative_monotone_nondecreasing(self, est_pair):
        p = est_pair["cumulative"].probabilities(0, 12)
        assert all(a <= b for a, b in zip(p, p[1:]))

    def test_modes_agree_at_mass_location(self, est_pair):
        for mode, est in est_pair.items():
            p = est.probabilities(0, 12)
            assert p[2] > 0, mode  # gap 3

    def test_all_probabilities_in_unit_interval(self, est_pair):
        for est in est_pair.values():
            p = est.probabilities(0, 12)
            assert np.all(p >= 0) and np.all(p <= 1)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            InterArrivalEstimator(1, mode="bayes")

    def test_invalid_normalization_rejected(self):
        with pytest.raises(ValueError, match="normalization"):
            InterArrivalEstimator(1, normalization="l2")


class TestInvocationProbability:
    def test_ip_uses_exact_minute(self):
        est = InterArrivalEstimator(1, mode="survival")
        feed(est, 0, range(0, 50, 5))
        # Current offset 5 from last arrival at 45: exact P(gap=5)=1.
        assert est.invocation_probability(0, 50) == pytest.approx(1.0)
        # Offset 3: exact probability is 0 even though survival is 1.
        assert est.invocation_probability(0, 48) == 0.0

    def test_ip_boundaries(self):
        est = InterArrivalEstimator(1)
        assert est.invocation_probability(0, 100) == 0.0  # never seen
        est.observe(0, 100)
        assert est.invocation_probability(0, 100) == 1.0  # arriving now
        assert est.invocation_probability(0, 150) == 0.0  # beyond window


class TestQueryCaching:
    """The version-dirty caches must be invisible except in identity."""

    def test_repeated_query_returns_cached_array(self):
        est = InterArrivalEstimator(1, mode="survival")
        feed(est, 0, range(0, 30, 3))
        a = est.probabilities(0, 30)
        b = est.probabilities(0, 30)
        assert a is b
        ea = est.exact_probabilities(0, 30)
        eb = est.exact_probabilities(0, 30)
        assert ea is eb

    def test_new_arrival_invalidates(self):
        est = InterArrivalEstimator(1, mode="survival")
        feed(est, 0, range(0, 30, 3))
        before = est.probabilities(0, 30).copy()
        est.observe(0, 35)  # gap of 5 shifts the distribution
        after = est.probabilities(0, 35)
        assert not np.array_equal(before, after)

    def test_eviction_invalidates(self):
        est = InterArrivalEstimator(1, local_window=10, mode="exact")
        feed(est, 0, [0, 2, 4, 9])
        with_recent = est.probabilities(0, 9).copy()
        # By minute 30 every recent gap has aged out of the local window;
        # the estimate falls back to the lifetime distribution alone.
        aged = est.probabilities(0, 30)
        np.testing.assert_allclose(aged, with_recent)  # same data source here
        est2 = InterArrivalEstimator(1, local_window=10, mode="exact")
        feed(est2, 0, [0, 2, 4, 9])
        assert est2.n_gaps(0)[1] == 3
        est2.probabilities(0, 30)
        assert est2.n_gaps(0)[1] == 0  # eviction ran despite warm cache

    def test_cached_matches_fresh_estimator(self):
        # Query-heavy usage must give the same numbers as a fresh estimator
        # queried once (caching changes work done, never values).
        rng = np.random.default_rng(7)
        minutes = np.cumsum(rng.integers(1, 8, size=40))
        hot = InterArrivalEstimator(1, mode="hazard")
        cold = InterArrivalEstimator(1, mode="hazard")
        for m in minutes:
            hot.observe(0, int(m))
            cold.observe(0, int(m))
            hot.probabilities(0, int(m))  # extra queries warm the cache
            hot.exact_probabilities(0, int(m))
        now = int(minutes[-1]) + 1
        np.testing.assert_array_equal(
            hot.probabilities(0, now), cold.probabilities(0, now)
        )
        np.testing.assert_array_equal(
            hot.exact_probabilities(0, now), cold.exact_probabilities(0, now)
        )
