"""Tests for repro.core.peak — Algorithm 1."""

import math

import pytest

from repro.core.peak import PeakDetector


class TestIsPeak:
    def test_growth_beyond_threshold_is_peak(self):
        d = PeakDetector(memory_threshold=0.10)
        d.observe(1000.0)
        assert d.is_peak(1101.0)
        assert not d.is_peak(1100.0)

    def test_no_history_never_peak(self):
        d = PeakDetector()
        assert d.prior_memory() == math.inf
        assert not d.is_peak(1e9)

    def test_negative_memory_rejected(self):
        d = PeakDetector()
        with pytest.raises(ValueError):
            d.is_peak(-1.0)
        with pytest.raises(ValueError):
            d.observe(-1.0)


class TestPriorMemory:
    def test_continuous_activity_uses_previous_minute(self):
        d = PeakDetector(local_window=5)
        for m in (100.0, 200.0, 300.0):
            d.observe(m)
        # prev=300 beats the window average (200).
        assert d.prior_memory() == pytest.approx(300.0)

    def test_window_average_floors_the_prior(self):
        # Committed memory dropped after flattening; the demand average
        # keeps the prior anchored (no ratchet).
        d = PeakDetector(local_window=4)
        for _ in range(4):
            d.observe(1000.0)
        d.observe(demand_mb=1000.0, committed_mb=10.0)
        assert d.prior_memory() == pytest.approx(1000.0)

    def test_inactivity_uses_window_average_when_mature(self):
        d = PeakDetector(local_window=3)
        for m in (300.0, 300.0, 300.0, 300.0, 150.0, 0.0):
            d.observe(m)
        # prev == 0; system ran >= 2*l_window; window avg = (150+0+300)/3.
        assert d.prior_memory() == pytest.approx((300.0 + 150.0 + 0.0) / 3)

    def test_inactivity_falls_back_to_last_nonzero(self):
        d = PeakDetector(local_window=10)
        d.observe(500.0)
        d.observe(0.0)
        d.observe(0.0)
        # Not mature (< 2 * local_window): use last non-zero value.
        assert d.prior_memory() == pytest.approx(500.0)

    def test_all_zero_history_gives_infinity(self):
        d = PeakDetector()
        d.observe(0.0)
        d.observe(0.0)
        assert d.prior_memory() == math.inf
        assert not d.is_peak(1e6)

    def test_long_inactivity_with_zero_average(self):
        d = PeakDetector(local_window=2)
        d.observe(800.0)
        for _ in range(6):
            d.observe(0.0)
        # Window average is 0 -> fall through to last non-zero.
        assert d.prior_memory() == pytest.approx(800.0)


class TestFlattenTarget:
    def test_target_is_threshold_above_prior(self):
        d = PeakDetector(memory_threshold=0.15)
        d.observe(200.0)
        assert d.flatten_target() == pytest.approx(230.0)

    def test_target_infinite_without_history(self):
        assert PeakDetector().flatten_target() == math.inf

    @pytest.mark.parametrize("threshold", [0.05, 0.10, 0.15])
    def test_threshold_parameter(self, threshold):
        d = PeakDetector(memory_threshold=threshold)
        d.observe(1000.0)
        boundary = 1000.0 * (1 + threshold)
        assert not d.is_peak(boundary)
        assert d.is_peak(boundary + 1.0)


class TestConstruction:
    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            PeakDetector(memory_threshold=0.0)

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            PeakDetector(local_window=0)

    def test_minutes_observed(self):
        d = PeakDetector()
        d.observe(1.0)
        d.observe(2.0)
        assert d.minutes_observed == 2
