"""Tests for repro.core.priority — Eq. 1 and the downgrade counters."""

import numpy as np
import pytest

from repro.core.priority import PriorityStructure, normalize


class TestNormalize:
    def test_basic_minmax(self):
        out = normalize(np.array([0.0, 5.0, 10.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_equal_values_degenerate_branch(self):
        # Eq. 1: when Xmax == Xmin the result is X - Xmin (all zeros).
        out = normalize(np.array([4.0, 4.0, 4.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 0.0])

    def test_empty(self):
        assert normalize(np.array([])).size == 0

    def test_range_always_unit_interval(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            x = rng.integers(0, 100, size=8)
            out = normalize(x)
            assert out.min() >= 0.0 and out.max() <= 1.0

    def test_does_not_mutate_input(self):
        x = np.array([1.0, 2.0])
        normalize(x)
        np.testing.assert_array_equal(x, [1.0, 2.0])


class TestPriorityStructure:
    def test_starts_all_zero(self):
        ps = PriorityStructure(4)
        np.testing.assert_array_equal(ps.counts, [0, 0, 0, 0])
        np.testing.assert_array_equal(ps.normalized(), [0, 0, 0, 0])

    def test_record_and_count(self):
        ps = PriorityStructure(3)
        ps.record_downgrade(1)
        ps.record_downgrade(1)
        ps.record_downgrade(2)
        assert ps.count(1) == 2
        assert ps.count(0) == 0

    def test_most_downgraded_gets_priority_one(self):
        ps = PriorityStructure(3)
        for _ in range(5):
            ps.record_downgrade(0)
        ps.record_downgrade(2)
        n = ps.normalized()
        assert n[0] == pytest.approx(1.0)
        assert n[1] == pytest.approx(0.0)
        assert 0.0 < n[2] < 1.0

    def test_priority_accessor(self):
        ps = PriorityStructure(2)
        ps.record_downgrade(0)
        assert ps.priority(0) == pytest.approx(1.0)
        assert ps.priority(1) == pytest.approx(0.0)

    def test_counts_returns_copy(self):
        ps = PriorityStructure(2)
        ps.counts[0] = 99
        assert ps.count(0) == 0

    def test_bounds(self):
        ps = PriorityStructure(2)
        with pytest.raises(IndexError):
            ps.record_downgrade(2)
        with pytest.raises(ValueError):
            PriorityStructure(0)
