"""Tests for repro.core.pulse — the assembled policy."""

import numpy as np
import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import FunctionSpec, Trace


def one_function_trace(counts):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


class TestPulseConfig:
    def test_defaults_match_paper(self):
        cfg = PulseConfig()
        assert cfg.local_window == 60
        assert cfg.memory_threshold == 0.10
        assert cfg.threshold_scheme == "T1"

    @pytest.mark.parametrize(
        "field,value",
        [
            ("local_window", 0),
            ("memory_threshold", 0.0),
            ("threshold_scheme", "T9"),
            ("cold_variant", "median"),
            ("probability_normalization", "l1"),
            ("probability_mode", "fourier"),
            ("window", 0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises((ValueError, KeyError)):
            PulseConfig(**{field: value})

    def test_t2_name(self):
        assert PulsePolicy(PulseConfig(threshold_scheme="T2")).name == "PULSE-T2"
        assert PulsePolicy().name == "PULSE"


class TestPulseBehaviour:
    def test_unbound_policy_raises(self):
        p = PulsePolicy()
        with pytest.raises(RuntimeError, match="not bound"):
            p.assignment

    def test_window_cannot_exceed_engine(self, small_trace, assignment):
        p = PulsePolicy(PulseConfig(window=20))
        with pytest.raises(ValueError, match="exceeds"):
            Simulation(small_trace, assignment, p,
                       SimulationConfig(keep_alive_window=10)).run()

    def test_cold_variant_choices(self, gpt):
        trace = one_function_trace([1, 0, 0])
        r_high = Simulation(trace, {0: gpt}, PulsePolicy()).run()
        r_low = Simulation(
            trace, {0: gpt}, PulsePolicy(PulseConfig(cold_variant="lowest"))
        ).run()
        assert r_high.mean_accuracy == pytest.approx(gpt.highest.accuracy)
        assert r_low.mean_accuracy == pytest.approx(gpt.lowest.accuracy)

    def test_no_history_behaves_like_openwhisk(self, gpt):
        # Before any inter-arrival data, PULSE keeps the highest variant
        # for the full window -- identical cost and service as OpenWhisk.
        trace = one_function_trace([1] + [0] * 15)
        pulse = Simulation(trace, {0: gpt}, PulsePolicy()).run()
        ow = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        assert pulse.keepalive_cost_usd == pytest.approx(ow.keepalive_cost_usd)
        assert pulse.total_service_time_s == pytest.approx(ow.total_service_time_s)

    @pytest.mark.parametrize("mode", ["exact", "hazard"])
    def test_learns_timer_and_cuts_cost(self, gpt, mode):
        counts = np.zeros(600, dtype=np.int64)
        counts[::6] = 1  # exact 6-minute timer
        trace = one_function_trace(counts)
        policy = PulsePolicy(PulseConfig(probability_mode=mode))
        pulse = Simulation(trace, {0: gpt}, policy).run()
        ow = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        # Concentrated modes keep the highest variant only at the timer's
        # firing minute, cutting cost without extra cold starts.
        assert pulse.keepalive_cost_usd < 0.6 * ow.keepalive_cost_usd
        assert pulse.n_cold == ow.n_cold
        assert pulse.total_service_time_s <= ow.total_service_time_s

    def test_timer_never_costs_more_than_openwhisk(self, gpt):
        counts = np.zeros(600, dtype=np.int64)
        counts[::6] = 1
        trace = one_function_trace(counts)
        pulse = Simulation(trace, {0: gpt}, PulsePolicy()).run()
        ow = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        assert pulse.keepalive_cost_usd <= ow.keepalive_cost_usd
        assert pulse.n_cold == ow.n_cold

    def test_diagnostics_exposed(self, small_trace, assignment):
        p = PulsePolicy()
        Simulation(small_trace, assignment, p).run()
        assert p.n_downgrades >= 0
        assert p.n_peak_minutes >= 0
        assert len(p.priority_counts) == small_trace.n_functions

    def test_global_disabled_means_no_downgrades(self, small_trace, assignment):
        p = PulsePolicy(PulseConfig(enable_global=False))
        Simulation(small_trace, assignment, p).run()
        assert p.n_downgrades == 0
        assert p.n_peak_minutes == 0

    def test_deterministic(self, small_trace, assignment):
        a = Simulation(small_trace, assignment, PulsePolicy()).run()
        b = Simulation(small_trace, assignment, PulsePolicy()).run()
        assert a.keepalive_cost_usd == b.keepalive_cost_usd
        assert a.total_service_time_s == b.total_service_time_s
        assert a.mean_accuracy == b.mean_accuracy


class TestPulseHeadlineShape:
    """The paper's qualitative claims on a full multi-function run."""

    @pytest.fixture(scope="class")
    def runs(self, small_trace, zoo):
        fams = list(zoo)
        assignment = {
            fid: fams[fid % len(fams)] for fid in range(small_trace.n_functions)
        }
        return {
            "pulse": Simulation(small_trace, assignment, PulsePolicy()).run(),
            "openwhisk": Simulation(small_trace, assignment, OpenWhiskPolicy()).run(),
        }

    def test_cost_reduced(self, runs):
        assert runs["pulse"].keepalive_cost_usd < runs["openwhisk"].keepalive_cost_usd

    def test_service_time_not_worse(self, runs):
        assert (
            runs["pulse"].total_service_time_s
            <= runs["openwhisk"].total_service_time_s
        )

    def test_accuracy_close_to_best(self, runs):
        drop = runs["openwhisk"].mean_accuracy - runs["pulse"].mean_accuracy
        assert 0.0 <= drop < 5.0

    def test_warm_starts_comparable(self, runs):
        assert runs["pulse"].warm_fraction >= runs["openwhisk"].warm_fraction - 0.05
