"""Tests for repro.core.thresholds — T1/T2 band mapping."""

import pytest

from repro.core.thresholds import (
    MonotoneScheme,
    TechniqueT1,
    TechniqueT2,
    get_scheme,
)


class TestT1:
    @pytest.fixture()
    def t1(self):
        return TechniqueT1()

    def test_zero_probability_keeps_lowest(self, t1):
        # §V: at least the low-quality container stays alive.
        assert t1.select_level(0.0, 3) == 0

    def test_bands_for_three_variants(self, t1):
        assert t1.select_level(0.2, 3) == 0
        assert t1.select_level(0.5, 3) == 1
        assert t1.select_level(0.9, 3) == 2

    def test_thresholds_at_i_over_n(self, t1):
        # p in [i/N, (i+1)/N) selects level i.
        assert t1.select_level(1 / 3, 3) == 1
        assert t1.select_level(2 / 3, 3) == 2

    def test_probability_one_selects_highest(self, t1):
        assert t1.select_level(1.0, 3) == 2
        assert t1.select_level(1.0, 2) == 1

    def test_single_variant(self, t1):
        assert t1.select_level(0.0, 1) == 0
        assert t1.select_level(1.0, 1) == 0

    def test_out_of_range_probability(self, t1):
        with pytest.raises(ValueError):
            t1.select_level(1.1, 3)
        with pytest.raises(ValueError):
            t1.select_level(-0.1, 3)

    def test_bad_variant_count(self, t1):
        with pytest.raises(ValueError):
            t1.select_level(0.5, 0)


class TestT2:
    @pytest.fixture()
    def t2(self):
        return TechniqueT2()

    def test_zero_reserved_for_lowest(self, t2):
        assert t2.select_level(0.0, 3) == 0

    def test_positive_probability_skips_lowest(self, t2):
        # (0, 1] is split among the N-1 upper variants.
        assert t2.select_level(0.01, 3) == 1
        assert t2.select_level(0.4, 3) == 1
        assert t2.select_level(0.6, 3) == 2
        assert t2.select_level(1.0, 3) == 2

    def test_two_variants(self, t2):
        assert t2.select_level(0.0, 2) == 0
        assert t2.select_level(0.3, 2) == 1
        assert t2.select_level(1.0, 2) == 1

    def test_single_variant(self, t2):
        assert t2.select_level(0.7, 1) == 0


class TestMonotoneScheme:
    def test_custom_cuts(self):
        s = MonotoneScheme([0.1, 0.8])
        assert s.select_level(0.05, 3) == 0
        assert s.select_level(0.5, 3) == 1
        assert s.select_level(0.9, 3) == 2

    def test_clamped_to_family_size(self):
        s = MonotoneScheme([0.1, 0.2, 0.3])
        assert s.select_level(0.9, 2) == 1

    def test_rejects_unsorted_cuts(self):
        with pytest.raises(ValueError, match="increasing"):
            MonotoneScheme([0.5, 0.2])

    def test_rejects_out_of_range_cuts(self):
        with pytest.raises(ValueError):
            MonotoneScheme([0.0, 0.5])


class TestGetScheme:
    def test_by_name(self):
        assert isinstance(get_scheme("T1"), TechniqueT1)
        assert isinstance(get_scheme("T2"), TechniqueT2)

    def test_instance_passthrough(self):
        s = MonotoneScheme([0.5])
        assert get_scheme(s) is s

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown"):
            get_scheme("T3")


class TestGeneralPrinciple:
    """The paper's robustness claim: any scheme works as long as higher
    probability maps to (weakly) higher accuracy."""

    @pytest.mark.parametrize(
        "scheme", [TechniqueT1(), TechniqueT2(), MonotoneScheme([0.05, 0.6])]
    )
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_monotone_in_probability(self, scheme, n):
        probs = [i / 100 for i in range(101)]
        levels = [scheme.select_level(p, n) for p in probs]
        assert all(a <= b for a, b in zip(levels, levels[1:]))
        assert all(0 <= lv < n for lv in levels)
