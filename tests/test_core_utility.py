"""Tests for repro.core.utility — Eq. 2."""

import pytest

from repro.core.utility import UtilityComponents, components_for, utility_value


class TestUtilityValue:
    def test_equal_weighting(self):
        assert utility_value(0.1, 0.2, 0.3) == pytest.approx(0.6)

    def test_range(self):
        assert utility_value(0.0, 0.0, 0.0) == 0.0
        assert utility_value(1.0, 1.0, 1.0) == 3.0

    @pytest.mark.parametrize("bad", [-0.1, 1.1])
    @pytest.mark.parametrize("slot", range(3))
    def test_component_bounds_enforced(self, bad, slot):
        args = [0.5, 0.5, 0.5]
        args[slot] = bad
        with pytest.raises(ValueError):
            utility_value(*args)


class TestComponentsFor:
    def test_higher_variant_uses_delta(self, gpt):
        comp = components_for(gpt, gpt.highest, priority=0.0,
                              invocation_probability=0.0)
        assert comp.accuracy_improvement == pytest.approx(
            (93.45 - 92.35) / 100.0
        )

    def test_lowest_variant_uses_full_accuracy(self, gpt):
        # The paper's anti-drop weighting: the lowest variant's Ai is its
        # accuracy in decimal, which dwarfs the deltas of higher variants.
        comp = components_for(gpt, gpt.lowest, priority=0.0,
                              invocation_probability=0.0)
        assert comp.accuracy_improvement == pytest.approx(0.8765)

    def test_value_sums_components(self, bert):
        comp = components_for(bert, bert.highest, priority=0.25,
                              invocation_probability=0.5)
        assert comp.value == pytest.approx(
            comp.accuracy_improvement + 0.25 + 0.5
        )

    def test_lowest_variant_outranks_high_delta_variant(self, gpt):
        """The built-in protection: with equal Pr/Ip, downgrading prefers
        shaving a high variant over dropping a lowest-variant model."""
        high = components_for(gpt, gpt.highest, 0.0, 0.0)
        low = components_for(gpt, gpt.lowest, 0.0, 0.0)
        assert low.value > high.value
