"""Tests for UtilityWeights and the weighted global optimizer."""

import pytest

from repro.core.utility import UtilityComponents, UtilityWeights
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.runtime.simulator import Simulation


class TestUtilityWeights:
    def test_default_is_equal_weighting(self):
        w = UtilityWeights()
        comp = UtilityComponents(0.2, 0.3, 0.4)
        assert w.apply(comp) == pytest.approx(comp.value)

    def test_zeroing_a_component(self):
        w = UtilityWeights(priority=0.0)
        comp = UtilityComponents(0.2, 0.9, 0.4)
        assert w.apply(comp) == pytest.approx(0.6)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match="weight"):
            UtilityWeights(accuracy_improvement=-0.5)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            UtilityWeights().priority = 2.0


class TestWeightedPulse:
    def test_weights_reach_the_optimizer(self, small_trace, assignment):
        p = PulsePolicy(
            PulseConfig(utility_weights=UtilityWeights(priority=0.0))
        )
        Simulation(small_trace, assignment, p).run()
        assert p._gopt is not None
        assert p._gopt.weights.priority == 0.0

    def test_no_priority_term_concentrates_downgrades(self, small_trace, assignment):
        full = PulsePolicy()
        no_pr = PulsePolicy(PulseConfig(utility_weights=UtilityWeights(priority=0.0)))
        Simulation(small_trace, assignment, full).run()
        Simulation(small_trace, assignment, no_pr).run()
        if full.n_downgrades > 20 and no_pr.n_downgrades > 20:
            conc_full = full.priority_counts.max() / full.priority_counts.sum()
            conc_nopr = no_pr.priority_counts.max() / no_pr.priority_counts.sum()
            assert conc_nopr >= conc_full
