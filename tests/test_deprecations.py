"""The api_redesign deprecation cycle, final stage: the PR-3 shims
(``SimulationConfig(fast=True)``, the ``repro.cli`` module-attribute
shims) now *raise* with a message naming the replacement."""

from __future__ import annotations

import pytest

from repro.core.pulse import PulsePolicy
from repro.runtime.simulator import Simulation, SimulationConfig


class TestFastFlagRemoved:
    def test_fast_true_raises_with_pointer(self):
        with pytest.raises(ValueError, match="engine='fast'"):
            SimulationConfig(fast=True)

    def test_fast_false_still_accepted(self, tiny_trace, tiny_assignment):
        # The field survives one release for the clear error message;
        # the default (False) stays a no-op and emits no warnings
        # (filterwarnings turns repro-internal DeprecationWarnings into
        # errors suite-wide).
        Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), SimulationConfig()
        ).run()

    def test_engine_argument_is_the_replacement(
        self, tiny_trace, tiny_assignment
    ):
        fast = Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), SimulationConfig()
        ).run(engine="fast")
        ref = Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), SimulationConfig()
        ).run(engine="reference")
        assert fast.total_service_time_s == ref.total_service_time_s
        assert fast.keepalive_cost_usd == ref.keepalive_cost_usd


class TestCliShimsRemoved:
    @pytest.mark.parametrize(
        ("name", "replacement"),
        [
            ("_POLICIES", "repro.api.list_policies"),
            ("_LONG_WINDOW_POLICIES", "keep_alive_window"),
            ("_parse_fid_minute", "repro.utils.specs"),
        ],
    )
    def test_removed_attribute_raises_with_pointer(self, name, replacement):
        import repro.cli as cli

        with pytest.raises(AttributeError, match=replacement):
            getattr(cli, name)

    def test_unknown_attribute_still_raises(self):
        import repro.cli as cli

        with pytest.raises(AttributeError):
            cli._NOT_A_THING

    def test_replacements_exist(self):
        # The error messages point somewhere real.
        from repro.api import list_policies, policy_spec
        from repro.utils.specs import parse_fid_minute

        assert "pulse" in list_policies()
        assert policy_spec("pulse").keep_alive_window > 0
        assert parse_fid_minute("3:120", "--cold") == (3, 120)
