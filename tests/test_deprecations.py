"""The api_redesign deprecation shims: warn once, behave identically."""

from __future__ import annotations

import pytest

from repro.core.pulse import PulsePolicy
from repro.runtime.simulator import Simulation, SimulationConfig


class TestFastFlagShim:
    def test_fast_true_warns_and_uses_fast_engine(self, tiny_trace, tiny_assignment):
        cfg = SimulationConfig(fast=True)
        sim = Simulation(tiny_trace, tiny_assignment, PulsePolicy(), cfg)
        with pytest.warns(DeprecationWarning, match="repro.runtime") as rec:
            legacy = sim.run()
        assert len(rec) == 1  # exactly one warning per run() call
        explicit = Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), SimulationConfig()
        ).run(engine="fast")
        assert legacy.total_service_time_s == explicit.total_service_time_s
        assert legacy.keepalive_cost_usd == explicit.keepalive_cost_usd

    def test_fast_false_does_not_warn(self, tiny_trace, tiny_assignment):
        # No deprecation noise on the default path (filterwarnings turns
        # repro-internal DeprecationWarnings into errors suite-wide).
        Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), SimulationConfig()
        ).run()

    def test_explicit_engine_silences_legacy_flag(self, tiny_trace, tiny_assignment):
        cfg = SimulationConfig(fast=True)
        Simulation(tiny_trace, tiny_assignment, PulsePolicy(), cfg).run(
            engine="fast"
        )


class TestCliShims:
    def test_policies_dict_warns_and_works(self):
        import repro.cli as cli

        with pytest.warns(DeprecationWarning, match="repro.cli._POLICIES") as rec:
            policies = cli._POLICIES
        assert len(rec) == 1
        assert "pulse" in policies and "openwhisk" in policies
        assert policies["openwhisk"]().name == "OpenWhisk"

    def test_long_window_set_warns_and_matches_registry(self):
        import repro.cli as cli
        from repro.api import list_policies, policy_spec

        with pytest.warns(DeprecationWarning, match="keep_alive_window"):
            longs = cli._LONG_WINDOW_POLICIES
        assert longs == {
            n for n in list_policies()
            if policy_spec(n).keep_alive_window > 10
        }

    def test_parse_fid_minute_shim(self):
        import repro.cli as cli

        with pytest.warns(DeprecationWarning, match="repro.utils.specs"):
            fn = cli._parse_fid_minute
        assert fn("3:120", "--cold") == (3, 120)

    def test_unknown_attribute_still_raises(self):
        import repro.cli as cli

        with pytest.raises(AttributeError):
            cli._NOT_A_THING
