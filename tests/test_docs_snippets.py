"""Documentation cannot rot: execute the README's quickstart snippet and
check the examples stay importable/runnable in-process."""

import re
import runpy
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestReadmeQuickstart:
    def test_quickstart_code_block_runs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README lost its quickstart code block"
        snippet = blocks[0]
        # Shrink the workload so the doc test stays fast.
        snippet = snippet.replace("horizon_minutes=2880", "horizon_minutes=240")
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
        assert "pulse" in namespace and "fixed" in namespace
        assert namespace["pulse"].keepalive_cost_usd <= namespace[
            "fixed"
        ].keepalive_cost_usd

    def test_fleet_snippet_runs(self):
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert len(blocks) >= 2, "README lost its fleet-scale code block"
        snippet = blocks[1]
        assert 'engine="fleet"' in snippet
        # Shrink the fleet so the doc test stays fast.
        snippet = snippet.replace("n_functions=10_000", "n_functions=200")
        snippet = snippet.replace("horizon_minutes=720", "horizon_minutes=120")
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
        assert namespace["result"].n_invocations > 0

    def test_fleet_obs_snippet_runs(self, tmp_path, monkeypatch):
        readme = (REPO_ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert len(blocks) >= 3, "README lost its fleet observability block"
        snippet = blocks[2]
        assert "trace_sample" in snippet and "write_prometheus" in snippet
        # Shrink the fleet and keep the exported files in tmp.
        snippet = snippet.replace("n_functions=10_000", "n_functions=200")
        snippet = snippet.replace("horizon_minutes=240", "horizon_minutes=60")
        monkeypatch.chdir(tmp_path)
        namespace: dict = {}
        exec(compile(snippet, "README.md", "exec"), namespace)  # noqa: S102
        assert namespace["obs"].shard_invocations.sum() > 0
        assert (tmp_path / "fleet-run.jsonl").exists()
        assert (tmp_path / "fleet-metrics.prom").exists()

    def test_readme_references_existing_files(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for rel in re.findall(r"`(examples/[a-z_]+\.py)`", readme):
            assert (REPO_ROOT / rel).exists(), rel

    def test_documented_serve_invocations_parse(self):
        """Every `python -m repro serve ...` line in the docs must parse
        against the real CLI — a renamed or removed flag rots the
        crash-recovery quickstart silently otherwise."""
        import shlex

        from repro.cli import build_parser

        parser = build_parser()
        commands = []
        for doc in ("README.md", "docs/architecture.md"):
            for line in (REPO_ROOT / doc).read_text().splitlines():
                line = line.strip()
                if "-m repro serve" not in line or line.startswith("#"):
                    continue
                # Strip any env-var prefix, the interpreter invocation,
                # and a trailing comment.
                argv = shlex.split(line, comments=True)
                argv = argv[argv.index("repro") + 1 :]
                commands.append((doc, argv))
        assert len(commands) >= 4, "README lost its serve quickstart lines"
        for doc, argv in commands:
            assert argv[0] == "serve", (doc, argv)
            args = parser.parse_args(argv)
            assert args.func is not None, (doc, argv)

    def test_documented_serve_flags_exist(self):
        """Flags the durability docs name must exist on the serve parser."""
        from repro.cli import build_parser

        source = None
        for action in build_parser()._subparsers._group_actions:
            source = action.choices["serve"].format_help()
        for flag in ("--journal-dir", "--recover", "--compact-every",
                     "--token", "--max-sessions", "--max-inflight",
                     "--deadline-s", "--max-body-mb"):
            assert flag in source, flag


class TestExamples:
    @pytest.mark.parametrize(
        "example",
        [
            "quickstart.py",
            "trace_analysis.py",
            "custom_policy.py",
        ],
    )
    def test_example_runs_in_process(self, example, capsys, monkeypatch):
        # Shrink horizons via a tiny shim: the examples build their traces
        # with SyntheticTraceConfig; patch its default horizon down.
        import repro.traces.synthetic as synth

        original = synth.SyntheticTraceConfig

        def small(*args, **kwargs):
            kwargs["horizon_minutes"] = min(
                kwargs.get("horizon_minutes", 240), 240
            )
            return original(*args, **kwargs)

        monkeypatch.setattr(synth, "SyntheticTraceConfig", small)
        # Examples import the symbol directly from `repro`, patch there too.
        import repro

        monkeypatch.setattr(repro, "SyntheticTraceConfig", small)
        path = REPO_ROOT / "examples" / example
        runpy.run_path(str(path), run_name="__main__")
        assert capsys.readouterr().out.strip()
