"""Golden equivalence: the event-driven fast path vs the reference loop.

The fast engine (:mod:`repro.runtime.fastpath`) must produce *bit-identical*
metrics to the reference minute loop — not approximately equal: both loops
accumulate the same floats in the same order over the shared incremental
ledger, so any drift is a bug. The matrix below crosses every bundled
policy family with the engine features that change the fast path's shape
(event log, container pool, capacity valve, series recording).

Also home to the property test for :class:`KeepAliveSchedule`'s
incremental memory ledger: after any write sequence, ``memory_at`` must
match a from-scratch recomputation over the entry maps.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.openwhisk import FixedKeepAlivePolicy, OpenWhiskPolicy
from repro.baselines.static import (
    AllLowQualityPolicy,
    IntelligentOraclePolicy,
    RandomMixedPolicy,
)
from repro.core.pulse import PulsePolicy
from repro.milp.policy import MilpPolicy
from repro.models.zoo import default_zoo
from repro.runtime.schedule import KeepAliveSchedule
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.sota.icebreaker import IceBreakerPolicy
from repro.sota.integration import PulseIntegratedPolicy
from repro.sota.wild import WildPolicy

POLICIES = {
    "openwhisk": OpenWhiskPolicy,
    "fixed-lowest": AllLowQualityPolicy,
    "fixed-level-1": lambda: FixedKeepAlivePolicy(level=1),
    "random-mixed": lambda: RandomMixedPolicy(seed=3),
    "oracle": IntelligentOraclePolicy,
    "pulse": PulsePolicy,
    "wild": WildPolicy,
    "icebreaker": IceBreakerPolicy,
    "integrated-wild": lambda: PulseIntegratedPolicy(WildPolicy()),
}


def both_engines(trace, assignment, factory, cfg):
    ref = Simulation(trace, assignment, factory(), cfg).run(engine="reference")
    fast = Simulation(trace, assignment, factory(), cfg).run(engine="fast")
    return ref, fast


def assert_identical(ref, fast):
    """Every deterministic RunResult field matches exactly (wall clock and
    overhead instrumentation excluded by design)."""
    assert fast.policy_name == ref.policy_name
    assert fast.n_invocations == ref.n_invocations
    assert fast.n_warm == ref.n_warm
    assert fast.n_cold == ref.n_cold
    assert fast.n_forced_downgrades == ref.n_forced_downgrades
    assert fast.n_spawn_failures == ref.n_spawn_failures
    assert fast.n_retries == ref.n_retries
    assert fast.n_policy_faults == ref.n_policy_faults
    assert fast.n_degraded_minutes == ref.n_degraded_minutes
    assert fast.total_service_time_s == ref.total_service_time_s
    assert fast.keepalive_cost_usd == ref.keepalive_cost_usd
    assert fast.mean_accuracy == ref.mean_accuracy
    for a, b in (
        (ref.memory_series_mb, fast.memory_series_mb),
        (ref.ideal_memory_series_mb, fast.ideal_memory_series_mb),
    ):
        assert (a is None) == (b is None)
        if a is not None:
            np.testing.assert_array_equal(a, b)
    assert (ref.pool_stats is None) == (fast.pool_stats is None)
    if ref.pool_stats is not None:
        assert fast.pool_stats == ref.pool_stats
    assert (ref.events is None) == (fast.events is None)
    if ref.events is not None:
        assert list(fast.events) == list(ref.events)


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_default_config(self, small_trace, assignment, name):
        cfg = SimulationConfig()  # series + container pool on
        assert_identical(
            *both_engines(small_trace, assignment, POLICIES[name], cfg)
        )

    @pytest.mark.parametrize("name", ["openwhisk", "pulse", "random-mixed"])
    def test_lean_config(self, small_trace, assignment, name):
        cfg = SimulationConfig(record_series=False, track_containers=False)
        assert_identical(
            *both_engines(small_trace, assignment, POLICIES[name], cfg)
        )

    @pytest.mark.parametrize("name", ["openwhisk", "pulse"])
    def test_event_log(self, small_trace, assignment, name):
        cfg = SimulationConfig(record_events=True)
        assert_identical(
            *both_engines(small_trace, assignment, POLICIES[name], cfg)
        )

    @pytest.mark.parametrize("name", ["openwhisk", "pulse", "oracle"])
    def test_capacity_valve(self, small_trace, assignment, name):
        # Tight enough that the valve fires (forces random downgrades, so
        # this also pins the shared capacity_seed RNG stream).
        cfg = SimulationConfig(memory_capacity_mb=4000.0, capacity_seed=11)
        ref, fast = both_engines(small_trace, assignment, POLICIES[name], cfg)
        assert ref.n_forced_downgrades > 0  # the axis is actually exercised
        assert_identical(ref, fast)

    def test_capacity_and_events_together(self, small_trace, assignment):
        cfg = SimulationConfig(
            record_events=True, memory_capacity_mb=4000.0, capacity_seed=11
        )
        assert_identical(
            *both_engines(small_trace, assignment, POLICIES["pulse"], cfg)
        )

    def test_milp_policy(self, tiny_trace, tiny_assignment):
        cfg = SimulationConfig()
        assert_identical(
            *both_engines(tiny_trace, tiny_assignment, MilpPolicy, cfg)
        )

    def test_tiny_trace_all_policies(self, tiny_trace, tiny_assignment):
        cfg = SimulationConfig(record_events=True)
        for name, factory in POLICIES.items():
            assert_identical(
                *both_engines(tiny_trace, tiny_assignment, factory, cfg)
            )

    def test_measure_overhead_stays_on_reference(self, tiny_trace, tiny_assignment):
        # Figure 9's overhead metric needs the per-minute cadence: "auto"
        # must resolve to the reference loop, and asking for "fast"
        # outright is a contradiction the engine refuses.
        cfg = SimulationConfig(measure_overhead=True)
        ref = Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), cfg
        ).run(engine="reference")
        auto = Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), cfg
        ).run(engine="auto")
        assert auto.n_policy_decisions == ref.n_policy_decisions > 0
        with pytest.raises(ValueError, match="measure_overhead"):
            Simulation(
                tiny_trace, tiny_assignment, PulsePolicy(), cfg
            ).run(engine="fast")

    def test_unknown_engine_rejected(self, tiny_trace, tiny_assignment):
        with pytest.raises(ValueError, match="engine"):
            Simulation(
                tiny_trace, tiny_assignment, PulsePolicy(), SimulationConfig()
            ).run(engine="warp")


# -- incremental ledger property test ------------------------------------

_FAMILIES = list(default_zoo())
_N_FN = 3
_HORIZON = 64


@st.composite
def _ops(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["mark", "plan", "clear", "downgrade", "advance"]))
        fid = draw(st.integers(min_value=0, max_value=_N_FN - 1))
        minute = draw(st.integers(min_value=0, max_value=_HORIZON - 12))
        level = draw(st.integers(min_value=0, max_value=2))
        ops.append((kind, fid, minute, level))
    return ops


def _variant(fid, level):
    family = _FAMILIES[fid % len(_FAMILIES)]
    return family.variant(min(level, family.n_variants - 1))


@given(_ops())
@settings(max_examples=60, deadline=None)
def test_incremental_ledger_matches_recomputation(ops):
    schedule = KeepAliveSchedule(_N_FN, keep_alive_window=10)
    frontier = 0
    for kind, fid, minute, level in ops:
        minute = max(minute, frontier)  # writes behind the frontier are UB
        if kind == "mark":
            schedule.mark_alive(fid, minute, _variant(fid, level))
        elif kind == "plan":
            plan = [
                _variant(fid, level) if (minute + off) % 3 else None
                for off in range(1, 11)
            ]
            schedule.set_plan(fid, minute, plan)
        elif kind == "clear":
            schedule.clear(fid, minute)
        elif kind == "downgrade":
            schedule.downgrade(
                fid, minute, _FAMILIES[fid % len(_FAMILIES)], allow_drop=level != 0
            )
        else:
            schedule.advance(minute)
            frontier = max(frontier, minute)
    for m in range(_HORIZON + 12):
        incremental = schedule.memory_at(m)
        exact = schedule.recompute_memory_at(m)
        assert incremental == pytest.approx(exact, abs=1e-6)
        if exact == 0.0:
            assert incremental == 0.0  # empty minutes are exactly zero


@given(_ops())
@settings(max_examples=30, deadline=None)
def test_memory_vector_matches_per_minute_reads(ops):
    schedule = KeepAliveSchedule(_N_FN, keep_alive_window=10)
    for kind, fid, minute, level in ops:
        if kind in ("mark", "clear"):
            if kind == "mark":
                schedule.mark_alive(fid, minute, _variant(fid, level))
            else:
                schedule.clear(fid, minute)
        elif kind == "plan":
            schedule.set_plan(fid, minute, [_variant(fid, level)] * 10)
    sliced = schedule.memory_slice(0, _HORIZON)  # grows the ledger to cover it
    vec = schedule.memory_vector
    for m in range(len(vec)):
        assert vec[m] == schedule.memory_at(m)
    assert sliced == list(vec[:_HORIZON])
