"""Golden equivalence + shard invariance for the fleet engine.

The columnar fleet engine (:mod:`repro.runtime.fleet`) must produce
*bit-identical* results to the reference minute loop — the same contract
the fast path carries, extended with one more axis: the shard count.
``shards=k`` splits the fleet into contiguous fid ranges whose per-minute
partials are merged by a deterministic reducer, so any ``k`` must yield
the same ``RunResult`` and event stream as ``shards=1`` (and as the
reference engine), including under capacity-valve pressure and fault
plans, and under permutations of function ids that straddle shard
boundaries.

Also home to the unit properties of the columnar kernel itself:
``seq_fold`` versus a scalar accumulation loop, and the vectorized
threshold schemes versus their scalar ``select_level``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.openwhisk import FixedKeepAlivePolicy, OpenWhiskPolicy
from repro.baselines.static import (
    AllLowQualityPolicy,
    IntelligentOraclePolicy,
    RandomMixedPolicy,
)
from repro.core.pulse import PulseConfig, PulsePolicy
from repro.core.thresholds import MonotoneScheme, TechniqueT1, TechniqueT2
from repro.faults.plan import FaultPlan
from repro.experiments.assignments import sample_assignment
from repro.models.zoo import default_zoo
from repro.runtime.columnar import seq_fold
from repro.runtime.fleet import _vector_levels
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

from tests.test_engine_fastpath import assert_identical

POLICIES = {
    "openwhisk": OpenWhiskPolicy,
    "fixed-lowest": AllLowQualityPolicy,
    "fixed-level-1": lambda: FixedKeepAlivePolicy(level=1),
    "random-mixed": lambda: RandomMixedPolicy(seed=3),
    "pulse": PulsePolicy,
    "pulse-t2": lambda: PulsePolicy(PulseConfig(threshold_scheme="T2")),
}


def ref_vs_fleet(trace, assignment, factory, cfg, shards=1):
    ref = Simulation(trace, assignment, factory(), cfg).run(engine="reference")
    fleet = Simulation(trace, assignment, factory(), cfg).run(
        engine="fleet", shards=shards
    )
    return ref, fleet


class TestGoldenEquivalence:
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_default_config(self, small_trace, assignment, name):
        cfg = SimulationConfig()  # series + container pool on
        assert_identical(
            *ref_vs_fleet(small_trace, assignment, POLICIES[name], cfg)
        )

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_lean_config(self, small_trace, assignment, name):
        cfg = SimulationConfig(record_series=False, track_containers=False)
        assert_identical(
            *ref_vs_fleet(small_trace, assignment, POLICIES[name], cfg)
        )

    @pytest.mark.parametrize("name", ["openwhisk", "pulse", "pulse-t2"])
    def test_event_log(self, small_trace, assignment, name):
        cfg = SimulationConfig(record_events=True)
        assert_identical(
            *ref_vs_fleet(small_trace, assignment, POLICIES[name], cfg)
        )

    @pytest.mark.parametrize("name", ["openwhisk", "pulse"])
    def test_capacity_valve(self, small_trace, assignment, name):
        cfg = SimulationConfig(memory_capacity_mb=4000.0, capacity_seed=11)
        ref, fleet = ref_vs_fleet(
            small_trace, assignment, POLICIES[name], cfg
        )
        assert ref.n_forced_downgrades > 0  # the axis is actually exercised
        assert_identical(ref, fleet)

    def test_capacity_and_events_together(self, small_trace, assignment):
        cfg = SimulationConfig(
            record_events=True, memory_capacity_mb=4000.0, capacity_seed=11
        )
        assert_identical(
            *ref_vs_fleet(small_trace, assignment, PulsePolicy, cfg)
        )

    @pytest.mark.parametrize(
        "spec",
        [
            "spawn=0.2,seed=7",
            "slow=0.3,seed=5",
            "pressure=0.1,pressure-mb=4000,seed=9",
            "drop=0.05,jitter=0.2,seed=3",
        ],
    )
    def test_fault_plans(self, small_trace, assignment, spec):
        cfg = SimulationConfig(
            record_events=True, faults=FaultPlan.from_spec(spec)
        )
        assert_identical(
            *ref_vs_fleet(small_trace, assignment, PulsePolicy, cfg)
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_randomized_fleets(self, zoo, seed):
        """Seeded 50–500-function synthetics, with and without faults."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(50, 501))
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_minutes=180, seed=seed + 100, n_functions=n
            )
        )
        assignment = sample_assignment(n, zoo, seed=seed + 1)
        faults = (
            FaultPlan(seed=seed, spawn_failure_rate=0.1, cold_slowdown_rate=0.1)
            if seed % 2
            else None
        )
        cfg = SimulationConfig(
            record_events=True,
            memory_capacity_mb=300.0 * n,
            capacity_seed=seed,
            faults=faults,
        )
        ref, fleet = ref_vs_fleet(
            trace, assignment, PulsePolicy, cfg, shards=int(rng.integers(1, 9))
        )
        assert_identical(ref, fleet)


class TestShardInvariance:
    @pytest.mark.parametrize("shards", [2, 7])
    def test_matches_single_shard(self, small_trace, assignment, shards):
        cfg = SimulationConfig(
            record_events=True, memory_capacity_mb=4000.0, capacity_seed=11
        )
        one = Simulation(small_trace, assignment, PulsePolicy(), cfg).run(
            engine="fleet", shards=1
        )
        many = Simulation(small_trace, assignment, PulsePolicy(), cfg).run(
            engine="fleet", shards=shards
        )
        assert_identical(one, many)

    def test_more_shards_than_functions(self, tiny_trace, tiny_assignment):
        cfg = SimulationConfig()
        one = Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), cfg
        ).run(engine="fleet", shards=1)
        many = Simulation(
            tiny_trace, tiny_assignment, PulsePolicy(), cfg
        ).run(engine="fleet", shards=64)  # clamps to n_functions
        assert_identical(one, many)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_valve_decisions_shard_free(self, seed):
        """Property: the valve's downgrade decisions — victims, order,
        event stream — are identical for shards in {1, 2, 7}, including
        after a fid permutation chosen to straddle shard boundaries."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(24, 60))
        zoo = default_zoo()
        trace = generate_trace(
            SyntheticTraceConfig(
                horizon_minutes=90, seed=seed, n_functions=n
            )
        )
        assignment = sample_assignment(n, zoo, seed=seed + 1)
        # A permutation that moves every function across the 2- and
        # 7-shard boundaries (reversal maps each contiguous range onto
        # the opposite end of the fid space).
        perm = np.arange(n)[::-1].copy()
        trace = trace.select_functions(list(perm), name="permuted")
        assignment = {
            new: assignment[int(old)] for new, old in enumerate(perm)
        }
        cfg = SimulationConfig(
            record_events=True,
            memory_capacity_mb=250.0 * n,
            capacity_seed=seed,
        )
        runs = [
            Simulation(trace, assignment, PulsePolicy(), cfg).run(
                engine="fleet", shards=s
            )
            for s in (1, 2, 7)
        ]
        for other in runs[1:]:
            assert_identical(runs[0], other)
        # Decisions match the reference valve too, not just each other.
        ref = Simulation(trace, assignment, PulsePolicy(), cfg).run(
            engine="reference"
        )
        assert_identical(ref, runs[0])


class TestColumnarKernel:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            max_size=40,
        ),
        st.floats(min_value=-1e6, max_value=1e6),
    )
    def test_seq_fold_matches_scalar_loop(self, values, acc0):
        acc = acc0
        for v in values:
            acc += v
        assert seq_fold(acc0, np.array(values, dtype=np.float64)) == acc

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 10_000))
    def test_vector_levels_match_scalar(self, seed):
        rng = np.random.default_rng(seed)
        m, w = 16, 6  # (functions, window offsets), the kernel's shape
        probs = rng.random((m, w))
        probs[rng.random((m, w)) < 0.2] = 0.0  # exercise the p == 0 branches
        probs[rng.random((m, w)) < 0.1] = 1.0
        nv = rng.integers(1, 5, size=m)
        for scheme in (
            TechniqueT1(),
            TechniqueT2(),
            MonotoneScheme(cuts=(0.2, 0.5, 0.8)),
        ):
            got = _vector_levels(probs, nv, scheme)
            for i in range(m):
                for j in range(w):
                    want = scheme.select_level(float(probs[i, j]), int(nv[i]))
                    assert got[i, j] == (-1 if want is None else want), (
                        scheme,
                        probs[i, j],
                        nv[i],
                    )


class TestRejections:
    def test_unsupported_policy(self, small_trace, assignment):
        sim = Simulation(
            small_trace, assignment, IntelligentOraclePolicy(),
            SimulationConfig(),
        )
        with pytest.raises(ValueError, match="fleet"):
            sim.run(engine="fleet")

    def test_checkpoint_rejected(self, small_trace, assignment, tmp_path):
        from repro.runtime.checkpoint import CheckpointConfig

        sim = Simulation(
            small_trace, assignment, PulsePolicy(), SimulationConfig()
        )
        with pytest.raises(ValueError, match="checkpoint"):
            sim.run(
                engine="fleet",
                checkpoint=CheckpointConfig(path=tmp_path / "c.ckpt"),
            )

    def test_observe_accepted(self, small_trace, assignment):
        # Observability is no longer rejected: the fleet engine carries
        # a columnar FleetObsSession (full coverage in test_fleet_obs.py).
        from repro.obs.fleet import FleetObsSession

        sim = Simulation(
            small_trace, assignment, PulsePolicy(),
            SimulationConfig(observe=True),
        )
        result = sim.run(engine="fleet")
        assert isinstance(result.obs, FleetObsSession)

    @pytest.mark.parametrize("shards", [0, -1, 2.5])
    def test_bad_shard_counts(self, small_trace, assignment, shards):
        sim = Simulation(
            small_trace, assignment, PulsePolicy(), SimulationConfig()
        )
        with pytest.raises((ValueError, TypeError)):
            sim.run(engine="fleet", shards=shards)

    def test_shards_require_fleet_engine(self, small_trace, assignment):
        sim = Simulation(
            small_trace, assignment, PulsePolicy(), SimulationConfig()
        )
        with pytest.raises(ValueError, match="shards"):
            sim.run(engine="fast", shards=2)


class TestFacadePlumbing:
    def test_api_simulate_fleet(self, small_trace, assignment):
        from repro.api import simulate

        ref = simulate(small_trace, assignment=assignment, policy=PulsePolicy())
        fleet = simulate(
            small_trace, assignment=assignment, policy=PulsePolicy(),
            engine="fleet", shards=3,
        )
        assert_identical(ref, fleet)

    def test_experiment_config_accepts_fleet(self):
        from repro.experiments.runner import ExperimentConfig

        cfg = ExperimentConfig(engine="fleet", shards=4)
        assert (cfg.engine, cfg.shards) == ("fleet", 4)
        with pytest.raises(ValueError, match="shards"):
            ExperimentConfig(engine="fast", shards=2)
        with pytest.raises(ValueError, match="engine"):
            ExperimentConfig(engine="warp")

    def test_run_policies_fleet_matches_fast(self, zoo):
        from functools import partial

        from repro.api import make_policy
        from repro.experiments.runner import ExperimentConfig, run_policies

        trace = generate_trace(
            SyntheticTraceConfig(horizon_minutes=120, seed=5)
        )
        factories = {"pulse": partial(make_policy, "pulse")}
        results = {}
        for engine, shards in (("fast", 1), ("fleet", 2)):
            cfg = ExperimentConfig(
                n_runs=2, horizon_minutes=120, engine=engine, shards=shards
            )
            results[engine] = run_policies(trace, factories, cfg, zoo)
        for a, b in zip(results["fast"]["pulse"], results["fleet"]["pulse"]):
            assert_identical(a, b)
