"""Property-based and failure-injection tests for the simulation engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.models.zoo import default_zoo
from repro.runtime.costmodel import CostModel
from repro.runtime.policy import KeepAlivePolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import FunctionSpec, Trace

ZOO = default_zoo()
FAMILIES = list(ZOO)


def trace_from_matrix(matrix: list[list[int]]) -> Trace:
    counts = np.asarray(matrix, dtype=np.int64)
    specs = tuple(FunctionSpec(i, f"f{i}") for i in range(counts.shape[0]))
    return Trace(counts=counts, functions=specs)


small_traces = st.integers(min_value=1, max_value=4).flatmap(
    lambda n_fn: st.lists(
        st.lists(st.integers(min_value=0, max_value=3), min_size=30, max_size=30),
        min_size=n_fn,
        max_size=n_fn,
    )
)


class TestEngineConservation:
    @given(matrix=small_traces, policy_idx=st.integers(min_value=0, max_value=1))
    @settings(max_examples=40, deadline=None)
    def test_invocation_conservation(self, matrix, policy_idx):
        trace = trace_from_matrix(matrix)
        assignment = {f: FAMILIES[f % len(FAMILIES)] for f in range(trace.n_functions)}
        policy = [OpenWhiskPolicy, PulsePolicy][policy_idx]()
        r = Simulation(trace, assignment, policy).run()
        assert r.n_warm + r.n_cold == r.n_invocations == trace.total_invocations()

    @given(matrix=small_traces)
    @settings(max_examples=40, deadline=None)
    def test_cost_equals_memory_series_cost(self, matrix):
        trace = trace_from_matrix(matrix)
        assignment = {f: FAMILIES[f % len(FAMILIES)] for f in range(trace.n_functions)}
        cm = CostModel(usd_per_mb_minute=1e-4)
        cfg = SimulationConfig(cost_model=cm)
        r = Simulation(trace, assignment, OpenWhiskPolicy(), cfg).run()
        assert r.keepalive_cost_usd == pytest.approx(
            cm.series_cost(r.memory_series_mb), rel=1e-9
        )

    @given(matrix=small_traces)
    @settings(max_examples=40, deadline=None)
    def test_memory_bounded_by_sum_of_highest(self, matrix):
        trace = trace_from_matrix(matrix)
        assignment = {f: FAMILIES[f % len(FAMILIES)] for f in range(trace.n_functions)}
        r = Simulation(trace, assignment, PulsePolicy()).run()
        bound = sum(assignment[f].highest.memory_mb for f in assignment)
        assert r.memory_series_mb.max() <= bound + 1e-9

    @given(matrix=small_traces)
    @settings(max_examples=40, deadline=None)
    def test_accuracy_within_assigned_family_range(self, matrix):
        trace = trace_from_matrix(matrix)
        if trace.total_invocations() == 0:
            return
        assignment = {f: FAMILIES[f % len(FAMILIES)] for f in range(trace.n_functions)}
        r = Simulation(trace, assignment, PulsePolicy()).run()
        lo = min(f.lowest.accuracy for f in assignment.values())
        hi = max(f.highest.accuracy for f in assignment.values())
        assert lo - 1e-9 <= r.mean_accuracy <= hi + 1e-9

    @given(matrix=small_traces)
    @settings(max_examples=30, deadline=None)
    def test_pulse_cost_never_exceeds_openwhisk(self, matrix):
        # PULSE only ever plans variants <= the fixed policy's highest, for
        # windows no longer than the fixed policy's, so its memory-minutes
        # are bounded by OpenWhisk's.
        trace = trace_from_matrix(matrix)
        assignment = {f: FAMILIES[f % len(FAMILIES)] for f in range(trace.n_functions)}
        pulse = Simulation(trace, assignment, PulsePolicy()).run()
        ow = Simulation(trace, assignment, OpenWhiskPolicy()).run()
        assert pulse.keepalive_cost_usd <= ow.keepalive_cost_usd + 1e-9


class _OverlongPlanPolicy(KeepAlivePolicy):
    """Misbehaving policy: returns a plan longer than the window."""

    name = "overlong"

    def cold_variant(self, function_id, minute):
        return self.family(function_id).highest

    def plan(self, function_id, minute):
        return [self.family(function_id).highest] * (self.keep_alive_window + 5)


class _ForeignVariantPolicy(KeepAlivePolicy):
    """Misbehaving policy: plans a variant from the wrong family."""

    name = "foreign"

    def cold_variant(self, function_id, minute):
        return self.family(function_id).highest

    def plan(self, function_id, minute):
        other = next(f for f in FAMILIES if f.name != self.family(function_id).name)
        return self._full_window_plan(other.highest)


class TestFailureInjection:
    def test_overlong_plan_rejected(self, gpt):
        trace = trace_from_matrix([[1] + [0] * 10])
        with pytest.raises(ValueError, match="exceeds"):
            Simulation(trace, {0: gpt}, _OverlongPlanPolicy()).run()

    def test_foreign_variant_is_engine_visible(self, gpt):
        # The engine serves whatever variant is planned; a policy planning
        # foreign variants is legal at the schedule level (the schedule is
        # family-agnostic) but the downgrade path requires the right
        # family. This documents the contract boundary.
        trace = trace_from_matrix([[1, 0, 1] + [0] * 10])
        r = Simulation(trace, {0: gpt}, _ForeignVariantPolicy()).run()
        assert r.n_invocations == 2

    def test_unbound_policy_queries_fail_loudly(self):
        p = OpenWhiskPolicy()
        with pytest.raises(RuntimeError, match="not bound"):
            p.family(0)
        with pytest.raises(RuntimeError, match="not bound"):
            p.n_functions

    def test_bind_rejects_wrong_assignment_size(self, gpt, small_trace):
        p = OpenWhiskPolicy()
        with pytest.raises(ValueError, match="assignment"):
            p.bind(small_trace, {0: gpt}, 10)

    def test_bind_rejects_gappy_assignment(self, gpt, small_trace):
        p = OpenWhiskPolicy()
        bad = {fid + 100: gpt for fid in range(small_trace.n_functions)}
        with pytest.raises(ValueError):
            p.bind(small_trace, bad, 10)
