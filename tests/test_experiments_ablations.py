"""Tests for repro.experiments.ablations."""

import pytest

from repro.core.peak import PeakDetector
from repro.experiments.ablations import (
    dayphase_trace,
    peak_detector_ablation,
    scalability_study,
    utility_component_ablation,
)
from repro.experiments.runner import ExperimentConfig


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_runs=1, horizon_minutes=720, seed=4)


class TestNaivePriorRule:
    def test_naive_rule_flags_resumptions(self):
        d = PeakDetector(prior_rule="previous_minute")
        d.observe(500.0)
        d.observe(0.0)
        # Naive prior is the previous (zero) minute: any memory is a peak.
        assert d.prior_memory() == 0.0
        assert d.is_peak(100.0)
        # Algorithm 1 is robust to the same situation.
        d2 = PeakDetector(prior_rule="algorithm1")
        d2.observe(500.0)
        d2.observe(0.0)
        assert not d2.is_peak(100.0)

    def test_invalid_rule_rejected(self):
        with pytest.raises(ValueError, match="prior_rule"):
            PeakDetector(prior_rule="oracle")


class TestUtilityComponentAblation:
    def test_rows_and_concentration_field(self, config):
        rows = utility_component_ablation(config)
        assert [r.label for r in rows] == [
            "full (Ai+Pr+Ip)", "no Ai", "no Pr", "no Ip",
        ]
        for r in rows:
            assert 0.0 <= r.extra["downgrade_concentration"] <= 1.0


class TestPeakDetectorAblation:
    def test_dayphase_trace_has_inactivity(self):
        trace = dayphase_trace(1440, seed=4)
        totals = trace.total_per_minute()
        assert (totals == 0).mean() > 0.1  # real idle stretches

    def test_naive_rule_flags_more_peaks(self, config):
        rows = {r.label: r for r in peak_detector_ablation(config)}
        assert (
            rows["previous-minute"].extra["peak_minutes"]
            > rows["Algorithm 1"].extra["peak_minutes"]
        )
        assert (
            rows["previous-minute"].extra["downgrades"]
            > rows["Algorithm 1"].extra["downgrades"]
        )


class TestScalabilityStudy:
    def test_overhead_stays_bounded(self):
        rows = scalability_study((12, 24), horizon_minutes=240, seed=4)
        assert len(rows) == 2
        small, big = rows
        assert big.extra["n_decisions"] > small.extra["n_decisions"]
        # Per-decision overhead must not explode with concurrency.
        assert (
            big.extra["overhead_per_decision_us"]
            < 50 * max(small.extra["overhead_per_decision_us"], 1.0)
        )
