"""Tests for repro.experiments.assignments."""

import pytest

from repro.experiments.assignments import sample_assignment, sample_assignments


class TestSampleAssignment:
    def test_covers_all_functions(self, zoo):
        a = sample_assignment(12, zoo, seed=0)
        assert set(a) == set(range(12))

    def test_balanced_families(self, zoo):
        a = sample_assignment(10, zoo, seed=0)
        counts = {}
        for fam in a.values():
            counts[fam.name] = counts.get(fam.name, 0) + 1
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_balanced_when_not_divisible(self, zoo):
        a = sample_assignment(7, zoo, seed=1)
        counts = {}
        for fam in a.values():
            counts[fam.name] = counts.get(fam.name, 0) + 1
        assert max(counts.values()) <= 2

    def test_deterministic(self, zoo):
        a = sample_assignment(12, zoo, seed=5)
        b = sample_assignment(12, zoo, seed=5)
        assert {k: v.name for k, v in a.items()} == {k: v.name for k, v in b.items()}

    def test_default_zoo_used(self):
        a = sample_assignment(5, seed=0)
        assert len(a) == 5

    def test_rejects_zero_functions(self, zoo):
        with pytest.raises(ValueError):
            sample_assignment(0, zoo)


class TestSampleAssignments:
    def test_unique_combinations_across_runs(self, zoo):
        runs = sample_assignments(12, 10, zoo, seed=0)
        signatures = {tuple(a[f].name for f in range(12)) for a in runs}
        assert len(signatures) > 1  # paper: each run a unique combination

    def test_count(self, zoo):
        assert len(sample_assignments(6, 4, zoo, seed=0)) == 4

    def test_reproducible(self, zoo):
        a = sample_assignments(6, 3, zoo, seed=9)
        b = sample_assignments(6, 3, zoo, seed=9)
        for x, y in zip(a, b):
            assert {k: v.name for k, v in x.items()} == {
                k: v.name for k, v in y.items()
            }
