"""The durable sweep executor: chaos, retries, timeouts, resume.

These are the crash tests: workers are SIGKILLed or hung mid-run by the
deterministic chaos hooks, and the assertions pin the recovery contract
— every run converges, and the recovered artifacts are byte-identical
to an uninterrupted sweep's.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.durable import (
    DurableSweepConfig,
    run_durable_sweep,
)
from repro.experiments.manifest import RunManifest
from repro.experiments.runner import ExperimentConfig

POLICIES = ["pulse", "openwhisk"]


def _config(n_jobs: int = 2) -> ExperimentConfig:
    return ExperimentConfig(
        n_runs=2, horizon_minutes=60, seed=11, n_jobs=n_jobs, engine="fast"
    )


def _artifacts(out_dir: Path) -> dict[str, bytes]:
    return {
        p.name: p.read_bytes()
        for p in sorted((out_dir / "runs").glob("*.json"))
        if not p.name.endswith(".error.json")
    }


@pytest.fixture(scope="module")
def clean_sweep(tiny_trace, tmp_path_factory):
    """One uninterrupted sweep: the byte-identity baseline."""
    out = tmp_path_factory.mktemp("clean")
    result = run_durable_sweep(
        tiny_trace, POLICIES, _config(), out_dir=out,
        durable=DurableSweepConfig(checkpoint_every=15),
    )
    return result, out


class TestCleanSweep:
    def test_all_runs_done(self, clean_sweep):
        result, _out = clean_sweep
        assert result.ok
        assert result.manifest.summary()["done"] == 4
        assert result.manifest.n_retries == 0

    def test_summaries_loaded_per_run(self, clean_sweep):
        result, _out = clean_sweep
        for policy in POLICIES:
            assert len(result.summaries[policy]) == 2
            for idx, summary in enumerate(result.summaries[policy]):
                assert summary["run_id"] == f"{policy}/{idx:03d}"
                assert "wall_clock_s" not in summary
                assert summary["n_checkpoints"] >= 1

    def test_manifest_is_valid_json_on_disk(self, clean_sweep):
        _result, out = clean_sweep
        m = RunManifest.load(out / "manifest.json")
        assert m.n_done == 4
        for rec in m.runs.values():
            assert (out / rec.artifact).exists()

    def test_sweep_counters(self, clean_sweep):
        result, _out = clean_sweep
        flat = result.obs.metrics.as_flat_dict()
        assert flat["sweep_runs_done_total"] == 4
        # never-incremented counters have no series yet
        assert flat.get("sweep_retries_total", 0) == 0


class TestChaosKill:
    def test_sigkilled_workers_recover_bit_identically(
        self, tiny_trace, tmp_path, clean_sweep
    ):
        _clean_result, clean_out = clean_sweep
        result = run_durable_sweep(
            tiny_trace, POLICIES, _config(), out_dir=tmp_path,
            durable=DurableSweepConfig(checkpoint_every=15, chaos="kill:1"),
        )
        assert result.ok
        # Every first attempt died at its first checkpoint -> one retry
        # per run, resumed from the checkpoint file.
        assert result.manifest.n_retries == 4
        assert _artifacts(tmp_path) == _artifacts(clean_out)

    def test_exhausted_retries_become_failed_records(
        self, tiny_trace, tmp_path
    ):
        # kill:1 on every first attempt and no retry budget: every run
        # fails, the sweep still completes and reports faithfully.
        result = run_durable_sweep(
            tiny_trace, POLICIES, _config(), out_dir=tmp_path,
            durable=DurableSweepConfig(
                checkpoint_every=15, chaos="kill:1", max_retries=0
            ),
        )
        assert not result.ok
        assert result.manifest.n_failed == 4
        for rec in result.manifest.runs.values():
            assert rec.status == "failed"
            assert rec.error["kind"] == "killed"
        assert all(
            s is None for runs in result.summaries.values() for s in runs
        )

    def test_failed_sweep_resumes_to_done(
        self, tiny_trace, tmp_path, clean_sweep
    ):
        _clean_result, clean_out = clean_sweep
        first = run_durable_sweep(
            tiny_trace, POLICIES, _config(), out_dir=tmp_path,
            durable=DurableSweepConfig(
                checkpoint_every=15, chaos="kill:1", max_retries=0
            ),
        )
        assert first.manifest.n_failed == 4
        # Resume with the same parameters: chaos only fires on attempt 1,
        # so every run now completes from its checkpoint.
        manifest = RunManifest.load(tmp_path / "manifest.json")
        second = run_durable_sweep(
            tiny_trace, POLICIES, _config(), out_dir=tmp_path,
            durable=DurableSweepConfig(
                checkpoint_every=15, chaos="kill:1", max_retries=0
            ),
            resume=manifest,
        )
        assert second.ok
        assert second.manifest.n_done == 4
        assert _artifacts(tmp_path) == _artifacts(clean_out)


class TestChaosHang:
    def test_hung_workers_are_timed_out_and_retried(
        self, tiny_trace, tmp_path
    ):
        result = run_durable_sweep(
            tiny_trace, ["pulse"], _config(), out_dir=tmp_path,
            durable=DurableSweepConfig(
                checkpoint_every=15, chaos="hang:1", timeout_s=1.5
            ),
        )
        assert result.ok
        assert result.manifest.n_timeouts == 2
        assert result.manifest.n_retries == 2
        for rec in result.manifest.runs.values():
            assert rec.status == "done"


class TestResumeGuards:
    def test_resume_refuses_different_config(self, tiny_trace, tmp_path):
        run_durable_sweep(
            tiny_trace, ["pulse"], _config(), out_dir=tmp_path,
            durable=DurableSweepConfig(checkpoint_every=15),
        )
        manifest = RunManifest.load(tmp_path / "manifest.json")
        other = ExperimentConfig(
            n_runs=3, horizon_minutes=60, seed=11, n_jobs=2, engine="fast"
        )
        with pytest.raises(ValueError, match="config mismatch"):
            run_durable_sweep(
                tiny_trace, ["pulse"], other, out_dir=tmp_path,
                durable=DurableSweepConfig(checkpoint_every=15),
                resume=manifest,
            )

    def test_resume_refuses_different_trace(
        self, tiny_trace, small_trace, tmp_path
    ):
        run_durable_sweep(
            tiny_trace, ["pulse"], _config(), out_dir=tmp_path,
            durable=DurableSweepConfig(checkpoint_every=15),
        )
        manifest = RunManifest.load(tmp_path / "manifest.json")
        with pytest.raises(ValueError, match="hash mismatch"):
            run_durable_sweep(
                small_trace, ["pulse"], _config(), out_dir=tmp_path,
                durable=DurableSweepConfig(checkpoint_every=15),
                resume=manifest,
            )


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_s": 0},
            {"max_retries": -1},
            {"checkpoint_every": 0},
            {"chaos": "explode:1"},
            {"chaos": "kill:0"},
            {"chaos": "kill"},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DurableSweepConfig(**kwargs)


class TestErrorSidecars:
    def test_worker_exception_recorded(self, tiny_trace, tmp_path):
        # An unknown policy slips past run_durable_sweep (only repro.api
        # validates names), so the worker's policy_spec lookup raises —
        # exercising the exception -> sidecar -> failed-record path.
        result = run_durable_sweep(
            tiny_trace, ["no-such-policy"], _config(n_jobs=1),
            out_dir=tmp_path,
            durable=DurableSweepConfig(checkpoint_every=15, max_retries=0),
        )
        assert not result.ok
        rec = result.manifest.runs["no-such-policy/000"]
        assert rec.status == "failed"
        assert rec.error["kind"] == "exception"
        assert rec.error["type"] == "ValueError"
        assert "no-such-policy" in rec.error["message"]
        sidecar = tmp_path / "runs" / "no-such-policy-000.error.json"
        assert "Traceback" in json.loads(sidecar.read_text())["traceback"]
