"""End-to-end tests of the per-figure experiment functions (small scale).

Each test exercises one paper element's reproduction function and checks
the *shape* the paper reports (who wins, direction of change) rather than
absolute magnitudes.
"""

import numpy as np
import pytest

from repro.experiments import (
    ExperimentConfig,
    default_trace,
    figure1_histograms,
    figure2_drift,
    figure4_and_7_memory,
    figure5_tradeoff,
    figure6_headline,
    figure9_overhead,
    figure10_threshold_schemes,
    table1_characterization,
)
from repro.experiments.motivation import histogram_divergence
from repro.experiments.runner import run_policies
from repro.baselines.openwhisk import OpenWhiskPolicy


@pytest.fixture(scope="module")
def config():
    return ExperimentConfig(n_runs=2, horizon_minutes=1440, seed=3)


@pytest.fixture(scope="module")
def trace(config):
    return default_trace(config)


class TestRunner:
    def test_run_policies_paired_assignments(self, config, trace):
        results = run_policies(trace, {"a": OpenWhiskPolicy, "b": OpenWhiskPolicy}, config)
        # Identical policies over identical paired assignments -> identical metrics.
        for ra, rb in zip(results["a"], results["b"]):
            assert ra.keepalive_cost_usd == rb.keepalive_cost_usd

    def test_n_runs_respected(self, config, trace):
        results = run_policies(trace, {"a": OpenWhiskPolicy}, config)
        assert len(results["a"]) == config.n_runs


class TestTable1:
    def test_rows_cover_zoo(self, zoo):
        report, rows = table1_characterization(zoo, n_warm_samples=50, n_cold_samples=5)
        assert len(rows) == 14
        service = {r["model"]: r["service_time_s"] for r in rows}
        # Published ordering: larger GPT variants are slower.
        assert service["GPT-Small"] < service["GPT-Medium"] < service["GPT-Large"]


class TestMotivationFigures:
    def test_figure1_shapes_diverse(self, trace):
        hists = figure1_histograms(trace)
        assert len(hists) == 5
        values = list(hists.values())
        assert histogram_divergence(values) > 50.0  # clearly different shapes

    def test_figure2_function_drifts(self, trace):
        panels = figure2_drift(trace)
        assert len(panels) == 3
        assert histogram_divergence(list(panels.values())) > 20.0


class TestHeadlineFigures:
    def test_figure6_directions(self, config, trace):
        res = figure6_headline(config, trace)
        assert res.improvements["keepalive_cost"] > 0
        assert res.improvements["service_time"] > 0
        assert -5.0 < res.improvements["accuracy"] <= 0.5
        # Panel b: OpenWhisk's mean cost error above PULSE's.
        assert res.openwhisk_cost_error.mean() > res.pulse_cost_error.mean()

    def test_figure5_pulse_dominates(self, config, trace):
        pts = {p.label: p for p in figure5_tradeoff(config, trace)}
        low, high, pulse = (
            pts["lowest quality"],
            pts["highest quality"],
            pts["PULSE"],
        )
        assert low.keepalive_cost_usd < high.keepalive_cost_usd
        assert pulse.keepalive_cost_usd < high.keepalive_cost_usd
        assert pulse.accuracy_percent > low.accuracy_percent

    def test_figure4_7_memory_reduced(self, config):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=2880, seed=3)
        res = figure4_and_7_memory(cfg)
        assert res["pulse"].mean_memory_mb < res["openwhisk"].mean_memory_mb
        assert res["individual_only"].mean_memory_mb < res["openwhisk"].mean_memory_mb
        acc_drop = res["openwhisk"].accuracy_percent - res["pulse"].accuracy_percent
        assert 0 <= acc_drop < 5.0


class TestOverheadAndSensitivity:
    def test_figure9_milp_overhead_dominates(self, trace):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=1440, seed=3)
        res = figure9_overhead(cfg, trace)
        assert np.median(res.milp_overhead_ratio) > np.median(res.pulse_overhead_ratio)
        assert res.milp_accuracy <= res.pulse_accuracy + 0.5

    def test_figure10_t1_t2_comparable(self, trace):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=1440, seed=3)
        points = {p.label: p for p in figure10_threshold_schemes(cfg, trace)}
        assert set(points) == {"T1", "T2"}
        # Both schemes must deliver cost improvements of the same sign and
        # broadly similar magnitude (the robustness claim).
        assert points["T1"].keepalive_cost > 0
        assert points["T2"].keepalive_cost > 0
