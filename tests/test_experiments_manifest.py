"""Sweep manifests: durable state, content-hash guards, persistence."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    config_hash,
    trace_hash,
)
from repro.traces.schema import FunctionSpec, Trace

SWEEP_CONFIG = {"policies": ["pulse"], "n_runs": 2, "seed": 7}


def _trace(counts, names=None):
    counts = np.asarray(counts, dtype=np.int64)
    names = names or [f"f{i}" for i in range(counts.shape[0])]
    specs = tuple(
        FunctionSpec(i, n) for i, n in enumerate(names)
    )
    return Trace(counts=counts, functions=specs)


class TestHashes:
    def test_trace_hash_sees_counts_and_names(self):
        base = _trace([[1, 0, 2]])
        assert trace_hash(base) == trace_hash(_trace([[1, 0, 2]]))
        assert trace_hash(base) != trace_hash(_trace([[1, 0, 3]]))
        assert trace_hash(base) != trace_hash(_trace([[1, 0, 2]], ["other"]))

    def test_config_hash_is_order_insensitive(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})
        assert config_hash({"a": 1}) != config_hash({"a": 2})


class TestManifestLifecycle:
    def test_create_enumerates_every_run(self):
        m = RunManifest.create(SWEEP_CONFIG, _trace([[1, 2]]),
                               ["pulse", "openwhisk"], 2)
        assert sorted(m.runs) == [
            "openwhisk/000", "openwhisk/001", "pulse/000", "pulse/001",
        ]
        assert all(r.status == "pending" for r in m.runs.values())
        assert m.n_done == 0 and m.n_failed == 0
        assert len(m.incomplete()) == 4

    def test_save_load_round_trip(self, tmp_path):
        trace = _trace([[1, 2]])
        m = RunManifest.create(SWEEP_CONFIG, trace, ["pulse"], 2)
        m.runs["pulse/000"].status = "done"
        m.runs["pulse/000"].artifact = "runs/pulse-000.json"
        m.n_retries = 3
        path = m.save(tmp_path / "manifest.json")
        loaded = RunManifest.load(path)
        assert loaded.as_dict() == m.as_dict()
        assert loaded.path == path
        assert loaded.n_done == 1
        assert [r.run_id for r in loaded.incomplete()] == ["pulse/001"]

    def test_save_requires_a_path_once(self, tmp_path):
        m = RunManifest.create(SWEEP_CONFIG, _trace([[1]]), ["pulse"], 1)
        with pytest.raises(ValueError, match="path"):
            m.save()
        m.save(tmp_path / "manifest.json")
        m.runs["pulse/000"].status = "done"
        m.save()  # remembered
        assert RunManifest.load(tmp_path / "manifest.json").n_done == 1

    def test_schema_version_gate(self, tmp_path):
        m = RunManifest.create(SWEEP_CONFIG, _trace([[1]]), ["pulse"], 1)
        path = m.save(tmp_path / "manifest.json")
        d = json.loads(path.read_text())
        d["schema_version"] = MANIFEST_SCHEMA_VERSION + 1
        path.write_text(json.dumps(d))
        with pytest.raises(ValueError, match="schema"):
            RunManifest.load(path)

    def test_verify_trace_refuses_mismatch(self):
        m = RunManifest.create(SWEEP_CONFIG, _trace([[1, 2]]), ["pulse"], 1)
        m.verify_trace(_trace([[1, 2]]))  # identical content: fine
        with pytest.raises(ValueError, match="hash mismatch"):
            m.verify_trace(_trace([[9, 9]]))

    def test_summary_shape(self):
        m = RunManifest.create(SWEEP_CONFIG, _trace([[1]]), ["pulse"], 2)
        m.runs["pulse/000"].status = "done"
        m.runs["pulse/001"].status = "failed"
        assert m.summary() == {
            "runs": 2, "done": 1, "failed": 1,
            "retries": 0, "timeouts": 0, "quarantined": 0,
        }
