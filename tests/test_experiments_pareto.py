"""Tests for repro.experiments.pareto."""

import pytest

from repro.experiments.pareto import (
    ParetoPoint,
    pareto_frontier,
    pulse_configuration_sweep,
)
from repro.experiments.runner import ExperimentConfig


def point(label, cost, acc, frontier=False):
    return ParetoPoint(label, cost, acc, service_time_s=0.0, on_frontier=frontier)


class TestDominance:
    def test_strict_dominance(self):
        assert point("a", 1.0, 90.0).dominates(point("b", 2.0, 80.0))

    def test_equal_points_do_not_dominate(self):
        a, b = point("a", 1.0, 90.0), point("b", 1.0, 90.0)
        assert not a.dominates(b)
        assert not b.dominates(a)

    def test_tradeoff_points_do_not_dominate(self):
        cheap = point("cheap", 1.0, 70.0)
        accurate = point("accurate", 5.0, 90.0)
        assert not cheap.dominates(accurate)
        assert not accurate.dominates(cheap)


class TestFrontier:
    def test_dominated_point_marked(self):
        pts = [
            point("good", 1.0, 90.0),
            point("bad", 2.0, 80.0),
            point("tradeoff", 0.5, 85.0),
        ]
        marked = {p.label: p.on_frontier for p in pareto_frontier(pts)}
        assert marked == {"good": True, "bad": False, "tradeoff": True}

    def test_single_point_is_frontier(self):
        assert pareto_frontier([point("only", 1.0, 50.0)])[0].on_frontier

    def test_all_equal_points_are_frontier(self):
        pts = [point("a", 1.0, 50.0), point("b", 1.0, 50.0)]
        assert all(p.on_frontier for p in pareto_frontier(pts))


class TestSweep:
    def test_small_sweep(self):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=480, seed=14)
        points = pulse_configuration_sweep(
            cfg, schemes=("T1",), modes=("exact", "survival")
        )
        labels = {p.label for p in points}
        assert "all-highest" in labels and "all-lowest" in labels
        assert "T1/exact/KM_T=0.10" in labels
        assert any(p.on_frontier for p in points)

    def test_empty_dimension_rejected(self):
        with pytest.raises(ValueError):
            pulse_configuration_sweep(schemes=())
