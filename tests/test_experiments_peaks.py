"""Tests for repro.experiments.peaks — Tables II & III semantics."""

import numpy as np
import pytest

from repro.experiments.peaks import (
    STRATEGIES,
    evaluate_peak_window,
    tables2_3_peak_strategies,
)
from repro.traces.schema import FunctionSpec, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def peak_trace():
    return generate_trace(
        SyntheticTraceConfig(horizon_minutes=1440, seed=12, peak_intensity=8.0)
    )


@pytest.fixture(scope="module")
def peak_assignment(peak_trace, zoo):
    fams = list(zoo)
    return {fid: fams[fid % len(fams)] for fid in range(peak_trace.n_functions)}


def by_strategy(rows):
    return {r.strategy: r for r in rows}


class TestEvaluatePeakWindow:
    def test_all_strategies_present(self, peak_trace, peak_assignment):
        rows = evaluate_peak_window(peak_trace, peak_assignment, 200)
        assert {r.strategy for r in rows} == set(STRATEGIES)

    def test_paper_orderings(self, peak_trace, peak_assignment):
        from repro.traces.analysis import invocation_peaks

        peak = invocation_peaks(peak_trace, 1)[0]
        rows = by_strategy(evaluate_peak_window(peak_trace, peak_assignment, peak))
        high, low = rows["all_high"], rows["all_low"]
        mixed, intel = rows["random_mixed"], rows["intelligent"]
        # Tables II/III orderings: high has max cost/accuracy/service,
        # low has min; mixing lands in between.
        assert high.keepalive_cost_usd > mixed.keepalive_cost_usd > low.keepalive_cost_usd
        assert high.accuracy_percent > low.accuracy_percent
        assert low.accuracy_percent <= intel.accuracy_percent <= high.accuracy_percent
        assert low.service_time_s < high.service_time_s
        assert intel.keepalive_cost_usd < high.keepalive_cost_usd

    def test_equal_warm_starts_by_construction(self, peak_trace, peak_assignment):
        rows = evaluate_peak_window(peak_trace, peak_assignment, 200)
        assert len({r.n_invocations for r in rows}) == 1
        assert len({r.n_functions for r in rows}) == 1

    def test_intelligent_beats_random_on_accuracy(self, zoo):
        # Construct a case where busy functions are identifiable: two
        # functions invoke at the peak; only one re-invokes afterwards.
        counts = np.zeros((2, 40), dtype=np.int64)
        counts[:, 10] = 5
        counts[0, [12, 14, 16]] = 3  # function 0 stays busy
        trace = Trace(
            counts=counts,
            functions=(FunctionSpec(0, "busy"), FunctionSpec(1, "quiet")),
        )
        fams = list(zoo)
        assignment = {0: fams[0], 1: fams[0]}
        rows = by_strategy(evaluate_peak_window(trace, assignment, 10, seed=4))
        # The intelligent oracle keeps high quality on the busy function,
        # which serves most window invocations.
        assert rows["intelligent"].accuracy_percent >= rows["random_mixed"].accuracy_percent

    def test_no_invocation_at_minute_rejected(self, peak_trace, peak_assignment):
        quiet = int(np.flatnonzero(peak_trace.total_per_minute() == 0)[0])
        with pytest.raises(ValueError, match="no function"):
            evaluate_peak_window(peak_trace, peak_assignment, quiet)


class TestTables23:
    def test_both_tables_produced(self, peak_trace, peak_assignment):
        tables = tables2_3_peak_strategies(peak_trace, peak_assignment)
        assert set(tables) == {"table2_peak1", "table3_peak2"}
        for rows in tables.values():
            assert len(rows) == 4

    def test_two_peaks_are_distinct(self, peak_trace, peak_assignment):
        tables = tables2_3_peak_strategies(peak_trace, peak_assignment)
        t2 = tables["table2_peak1"][0]
        t3 = tables["table3_peak2"][0]
        # Different peaks -> different function sets or invocation counts.
        assert (t2.n_invocations, t2.n_functions) != (
            t3.n_invocations,
            t3.n_functions,
        ) or t2.service_time_s != t3.service_time_s
