"""Tests for the full-report generator (quick mode)."""

import pytest

from repro.experiments.report import generate_report
from repro.experiments.runner import ExperimentConfig, default_trace


@pytest.fixture(scope="module")
def report_text():
    config = ExperimentConfig(n_runs=1, horizon_minutes=480, seed=19)
    trace = default_trace(config)
    return generate_report(config, trace, quick=True)


class TestGenerateReport:
    def test_every_paper_element_has_a_section(self, report_text):
        for heading in (
            "Table I",
            "Figures 1 & 2",
            "Tables II & III",
            "Figures 4 & 7",
            "Figure 5",
            "Figure 6",
            "Figure 8",
            "Figure 9",
            "Figures 10-12",
            "Extensions",
        ):
            assert heading in report_text, heading

    def test_metadata_header(self, report_text):
        assert "1 runs x 480 minutes" in report_text
        assert "seed 19" in report_text

    def test_contains_published_models(self, report_text):
        assert "GPT-Large" in report_text
        assert "BERT-Small" in report_text

    def test_is_nonempty_markdown(self, report_text):
        assert report_text.startswith("# PULSE reproduction report")
        assert len(report_text.splitlines()) > 80
