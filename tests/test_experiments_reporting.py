"""Tests for repro.experiments.reporting."""

import numpy as np

from repro.experiments.reporting import format_bar_chart, format_series, format_table


class TestFormatTable:
    def test_basic_rendering(self):
        rows = [{"model": "GPT-Small", "acc": 87.65}, {"model": "GPT-Large", "acc": 93.45}]
        out = format_table(rows, title="Table I")
        assert "Table I" in out
        assert "GPT-Small" in out
        assert "93.45" in out

    def test_column_subset_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        out = format_table(rows, columns=["c", "a"])
        header = out.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])

    def test_large_numbers_have_separators(self):
        out = format_table([{"x": 123456.789}])
        assert "123,456.8" in out


class TestFormatSeries:
    def test_contains_range(self):
        out = format_series(np.array([0.0, 5.0, 10.0]), label="mem")
        assert out.startswith("mem:")
        assert "0" in out and "10" in out

    def test_long_series_bucketed(self):
        out = format_series(np.arange(10_000), width=50)
        # label-free output: bracketed range + 50 blocks
        assert len(out.split("] ")[-1]) == 50

    def test_constant_series(self):
        out = format_series(np.full(10, 3.0))
        assert "[3..3]" in out

    def test_empty(self):
        assert "(empty)" in format_series([], label="x")


class TestFormatBarChart:
    def test_positive_and_negative(self):
        out = format_bar_chart({"cost": 39.5, "accuracy": -0.6}, unit="%")
        lines = out.splitlines()
        assert "#" in lines[0]
        assert "-" in lines[1]
        assert "+39.50%" in lines[0]

    def test_empty(self):
        assert format_bar_chart({}) == "(no entries)"

    def test_zero_values_safe(self):
        out = format_bar_chart({"a": 0.0})
        assert "+0.00" in out
