"""The resilience sweep experiment (PULSE vs baselines under faults)."""

from __future__ import annotations

import pytest

from repro.experiments.resilience import (
    ResiliencePoint,
    fault_plan_at,
    resilience_sweep,
)
from repro.experiments.runner import ExperimentConfig
from repro.runtime.simulator import SimulationConfig

CONFIG = ExperimentConfig(
    n_runs=2,
    horizon_minutes=360,
    seed=7,
    sim=SimulationConfig(track_containers=False),
)


class TestResilienceSweep:
    def test_shape_and_clean_baseline(self, small_trace):
        points = resilience_sweep(
            config=CONFIG,
            trace=small_trace,
            policies=("pulse", "openwhisk"),
            fault_rates=(0.0, 0.2),
        )
        assert len(points) == 4
        assert all(isinstance(p, ResiliencePoint) for p in points)
        clean = [p for p in points if p.fault_rate == 0.0]
        assert {p.policy for p in clean} == {"pulse", "openwhisk"}
        for p in clean:
            assert p.n_spawn_failures == 0
            assert p.n_policy_faults == 0
            assert p.n_degraded_minutes == 0
        faulty = [p for p in points if p.fault_rate == 0.2]
        assert any(p.n_spawn_failures > 0 for p in faulty)

    def test_deterministic(self, small_trace):
        kwargs = dict(
            config=CONFIG, trace=small_trace,
            policies=("openwhisk",), fault_rates=(0.1,),
        )
        a = resilience_sweep(**kwargs)
        b = resilience_sweep(**kwargs)
        assert a == b

    def test_rates_validated(self, small_trace):
        with pytest.raises(ValueError, match="at least one"):
            resilience_sweep(config=CONFIG, trace=small_trace, fault_rates=())
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            resilience_sweep(
                config=CONFIG, trace=small_trace, fault_rates=(1.5,)
            )

    def test_fault_plan_at(self):
        plan = fault_plan_at(0.2, seed=5)
        assert plan.seed == 5
        assert plan.spawn_failure_rate == 0.2
        assert plan.cold_slowdown_rate == 0.2
        assert plan.drop_rate == 0.05
        assert plan.pressure_rate == 0.0  # no cap given
        with_cap = fault_plan_at(0.2, seed=5, pressure_cap_mb=4000.0)
        assert with_cap.pressure_rate == 0.05
        assert with_cap.pressure_cap_mb == 4000.0
