"""Tests for repro.experiments.runner configuration and orchestration."""

import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.experiments.runner import (
    ExperimentConfig,
    default_trace,
    run_policies,
    run_policy,
)
from repro.experiments.assignments import sample_assignment
from repro.traces.schema import MINUTES_PER_DAY


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.n_runs == 20
        assert cfg.horizon_minutes == 2 * MINUTES_PER_DAY
        assert cfg.n_jobs == 1

    @pytest.mark.parametrize(
        "field,value",
        [("n_runs", 0), ("horizon_minutes", 0), ("n_jobs", 0)],
    )
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            ExperimentConfig(**{field: value})

    def test_default_trace_matches_horizon(self):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=333, seed=5)
        trace = default_trace(cfg)
        assert trace.horizon == 333
        assert trace.n_functions == 12

    def test_default_trace_deterministic(self):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=200, seed=5)
        import numpy as np

        np.testing.assert_array_equal(
            default_trace(cfg).counts, default_trace(cfg).counts
        )


class TestRunPolicy:
    def test_single_run_wrapper(self, small_trace, zoo):
        assignment = sample_assignment(small_trace.n_functions, zoo, seed=0)
        r = run_policy(small_trace, assignment, OpenWhiskPolicy())
        assert r.policy_name == "OpenWhisk"
        assert r.n_invocations == small_trace.total_invocations()


class TestRunPolicies:
    def test_distinct_assignments_across_runs(self):
        cfg = ExperimentConfig(n_runs=3, horizon_minutes=240, seed=7)
        trace = default_trace(cfg)
        results = run_policies(trace, {"ow": OpenWhiskPolicy}, cfg)
        costs = {round(r.keepalive_cost_usd, 6) for r in results["ow"]}
        assert len(costs) > 1  # different assignments change the metrics

    def test_seed_reproducibility(self):
        cfg = ExperimentConfig(n_runs=2, horizon_minutes=240, seed=7)
        trace = default_trace(cfg)
        a = run_policies(trace, {"ow": OpenWhiskPolicy}, cfg)
        b = run_policies(trace, {"ow": OpenWhiskPolicy}, cfg)
        for ra, rb in zip(a["ow"], b["ow"]):
            assert ra.keepalive_cost_usd == rb.keepalive_cost_usd

    def test_parallel_matches_serial(self):
        # The shared-executor path (trace shipped once via the pool
        # initializer) must give the same per-run metrics as in-process.
        from dataclasses import replace

        from repro.baselines.static import AllLowQualityPolicy
        from repro.runtime.simulator import SimulationConfig

        cfg = ExperimentConfig(
            n_runs=3,
            horizon_minutes=240,
            seed=7,
            sim=SimulationConfig(record_series=False, track_containers=False),
        )
        trace = default_trace(cfg)
        policies = {"ow": OpenWhiskPolicy, "low": AllLowQualityPolicy}
        serial = run_policies(trace, policies, cfg)
        parallel = run_policies(trace, policies, replace(cfg, n_jobs=2))
        for name in policies:
            for rs, rp in zip(serial[name], parallel[name]):
                assert rs.keepalive_cost_usd == rp.keepalive_cost_usd
                assert rs.total_service_time_s == rp.total_service_time_s
                assert rs.n_invocations == rp.n_invocations

    def test_parallel_single_policy(self):
        from dataclasses import replace

        cfg = ExperimentConfig(n_runs=2, horizon_minutes=240, seed=3)
        trace = default_trace(cfg)
        serial = run_policies(trace, {"ow": OpenWhiskPolicy}, cfg)
        parallel = run_policies(
            trace, {"ow": OpenWhiskPolicy}, replace(cfg, n_jobs=2)
        )
        for rs, rp in zip(serial["ow"], parallel["ow"]):
            assert rs.keepalive_cost_usd == rp.keepalive_cost_usd


def _exploding_factory():
    """Module-level so the process pool can pickle it."""
    raise RuntimeError("policy construction exploded")


class TestFailureSemantics:
    """Regression: one crashing run must not abort the whole sweep."""

    def _policies(self):
        from repro.baselines.openwhisk import OpenWhiskPolicy

        return {"ow": OpenWhiskPolicy, "boom": _exploding_factory}

    def test_record_mode_isolates_the_failure(self):
        from repro.experiments.runner import RunError, split_errors
        from repro.runtime.metrics import RunResult

        cfg = ExperimentConfig(n_runs=3, horizon_minutes=120, seed=5)
        trace = default_trace(cfg)
        results = run_policies(
            trace, self._policies(), cfg, on_error="record"
        )
        # The healthy policy's runs all completed...
        assert all(isinstance(r, RunResult) for r in results["ow"])
        # ...and the crashing one produced aligned error records.
        assert all(isinstance(r, RunError) for r in results["boom"])
        assert [e.run_index for e in results["boom"]] == [0, 1, 2]
        assert results["boom"][0].error_type == "RuntimeError"
        assert "exploded" in results["boom"][0].message
        ok, errors = split_errors(results)
        assert len(ok["ow"]) == 3 and ok["boom"] == []
        assert len(errors) == 3

    def test_record_mode_isolates_in_process_pools(self):
        from dataclasses import replace

        from repro.experiments.runner import RunError
        from repro.runtime.metrics import RunResult

        cfg = ExperimentConfig(n_runs=2, horizon_minutes=120, seed=5, n_jobs=2)
        trace = default_trace(cfg)
        results = run_policies(
            trace, self._policies(), replace(cfg), on_error="record"
        )
        assert all(isinstance(r, RunResult) for r in results["ow"])
        assert all(isinstance(r, RunError) for r in results["boom"])

    def test_raise_mode_still_propagates(self):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=120, seed=5)
        trace = default_trace(cfg)
        with pytest.raises(RuntimeError, match="exploded"):
            run_policies(trace, self._policies(), cfg, on_error="raise")

    def test_raise_is_the_default(self):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=120, seed=5)
        trace = default_trace(cfg)
        with pytest.raises(RuntimeError, match="exploded"):
            run_policies(trace, self._policies(), cfg)

    def test_bogus_on_error_rejected(self):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=120, seed=5)
        trace = default_trace(cfg)
        with pytest.raises(ValueError, match="on_error"):
            run_policies(trace, self._policies(), cfg, on_error="ignore")
