"""Tests for repro.experiments.variance (and the parallel runner path)."""

import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.experiments.runner import ExperimentConfig, default_trace, run_policies
from repro.experiments.variance import paired_deltas, variance_report


@pytest.fixture(scope="module")
def results():
    config = ExperimentConfig(n_runs=4, horizon_minutes=720, seed=8)
    trace = default_trace(config)
    return run_policies(
        trace, {"OpenWhisk": OpenWhiskPolicy, "PULSE": PulsePolicy}, config
    )


class TestVarianceReport:
    def test_covers_all_policy_metric_pairs(self, results):
        report = variance_report(results)
        assert len(report) == 2 * 4
        assert {v.policy for v in report} == {"OpenWhisk", "PULSE"}

    def test_stats_are_consistent(self, results):
        for v in variance_report(results):
            assert v.stats.minimum <= v.stats.mean <= v.stats.maximum
            assert v.relative_spread >= 0.0

    def test_assignments_create_spread(self, results):
        # Different model-to-function assignments must move the metrics.
        cost = next(
            v
            for v in variance_report(results)
            if v.policy == "OpenWhisk" and v.metric == "keepalive_cost_usd"
        )
        assert cost.stats.std > 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            variance_report({})
        with pytest.raises(ValueError):
            variance_report({"x": []})


class TestPairedDeltas:
    def test_pulse_beats_openwhisk_on_every_paired_run(self, results):
        delta = paired_deltas(results, "OpenWhisk", "PULSE", "keepalive_cost_usd")
        # baseline - candidate > 0 <=> PULSE cheaper, run by run.
        assert delta.minimum > 0.0

    def test_unknown_metric(self, results):
        with pytest.raises(KeyError, match="unknown metric"):
            paired_deltas(results, "OpenWhisk", "PULSE", "latency_p99")

    def test_missing_policy(self, results):
        with pytest.raises(KeyError):
            paired_deltas(results, "OpenWhisk", "Wild")


class TestParallelRunner:
    def test_n_jobs_matches_serial(self):
        config_serial = ExperimentConfig(n_runs=2, horizon_minutes=360, seed=9)
        config_parallel = ExperimentConfig(
            n_runs=2, horizon_minutes=360, seed=9, n_jobs=2
        )
        trace = default_trace(config_serial)
        serial = run_policies(trace, {"OpenWhisk": OpenWhiskPolicy}, config_serial)
        parallel = run_policies(trace, {"OpenWhisk": OpenWhiskPolicy}, config_parallel)
        for a, b in zip(serial["OpenWhisk"], parallel["OpenWhisk"]):
            assert a.keepalive_cost_usd == b.keepalive_cost_usd
            assert a.total_service_time_s == b.total_service_time_s
