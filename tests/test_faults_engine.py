"""Golden equivalence and determinism of fault injection on both engines.

The determinism contract (see :mod:`repro.faults.plan`): a fixed
:class:`FaultPlan` produces bit-identical metrics on the reference and
fast engines, because every fault draw is keyed on the plan's seed and
the (function, minute) coordinate, never on engine call order. These
tests extend the golden equivalence matrix of
``test_engine_fastpath.py`` along the fault axes.
"""

from __future__ import annotations

import pytest
from tests.test_engine_fastpath import POLICIES, assert_identical, both_engines

from repro.faults.plan import FaultPlan
from repro.runtime.events import EventKind
from repro.runtime.simulator import Simulation, SimulationConfig

SPAWN_PLAN = FaultPlan(seed=7, spawn_failure_rate=0.3, cold_slowdown_rate=0.2)
FULL_PLAN = FaultPlan(
    seed=7, spawn_failure_rate=0.3, cold_slowdown_rate=0.2,
    pressure_rate=0.05, pressure_cap_mb=5000.0,
    drop_rate=0.02, duplicate_rate=0.02, jitter_rate=0.02,
)


class TestFaultGoldenEquivalence:
    @pytest.mark.parametrize("name", ["openwhisk", "pulse", "random-mixed"])
    def test_spawn_and_slowdown(self, small_trace, assignment, name):
        cfg = SimulationConfig(faults=SPAWN_PLAN)
        ref, fast = both_engines(small_trace, assignment, POLICIES[name], cfg)
        assert ref.n_spawn_failures > 0  # the axis is actually exercised
        assert_identical(ref, fast)

    @pytest.mark.parametrize("name", ["openwhisk", "pulse"])
    def test_every_axis_at_once(self, small_trace, assignment, name):
        cfg = SimulationConfig(faults=FULL_PLAN)
        ref, fast = both_engines(small_trace, assignment, POLICIES[name], cfg)
        assert ref.n_spawn_failures > 0
        assert_identical(ref, fast)

    def test_pressure_without_standing_capacity(self, small_trace, assignment):
        # Spike minutes impose a cap even when memory_capacity_mb is None.
        plan = FaultPlan(seed=3, pressure_rate=0.3, pressure_cap_mb=3000.0)
        cfg = SimulationConfig(faults=plan, capacity_seed=11)
        ref, fast = both_engines(
            small_trace, assignment, POLICIES["openwhisk"], cfg
        )
        assert ref.n_forced_downgrades > 0
        assert_identical(ref, fast)

    def test_pressure_combines_with_standing_capacity(
        self, small_trace, assignment
    ):
        plan = FaultPlan(seed=3, pressure_rate=0.2, pressure_cap_mb=3000.0)
        cfg = SimulationConfig(
            faults=plan, memory_capacity_mb=4000.0, capacity_seed=11
        )
        assert_identical(
            *both_engines(small_trace, assignment, POLICIES["pulse"], cfg)
        )

    def test_faults_with_events_and_observability(
        self, small_trace, assignment
    ):
        cfg = SimulationConfig(
            faults=SPAWN_PLAN, record_events=True, observe=True
        )
        ref, fast = both_engines(
            small_trace, assignment, POLICIES["pulse"], cfg
        )
        assert_identical(ref, fast)
        spawn_events = [
            e for e in ref.events if e.kind is EventKind.SPAWN_FAILURE
        ]
        assert spawn_events
        assert ref.obs.records == fast.obs.records
        assert any(r["kind"] == "spawn_fault" for r in ref.obs.records)


class TestFaultDeterminism:
    def test_same_seed_same_run(self, small_trace, assignment):
        cfg = SimulationConfig(faults=FULL_PLAN)
        a = Simulation(
            small_trace, assignment, POLICIES["pulse"](), cfg
        ).run(engine="fast")
        b = Simulation(
            small_trace, assignment, POLICIES["pulse"](), cfg
        ).run(engine="fast")
        assert a.total_service_time_s == b.total_service_time_s
        assert a.n_spawn_failures == b.n_spawn_failures
        assert a.n_retries == b.n_retries

    def test_different_seed_different_faults(self, small_trace, assignment):
        runs = []
        for seed in (1, 2):
            cfg = SimulationConfig(
                faults=FaultPlan(seed=seed, spawn_failure_rate=0.5)
            )
            runs.append(
                Simulation(
                    small_trace, assignment, POLICIES["openwhisk"](), cfg
                ).run(engine="fast")
            )
        assert runs[0].total_service_time_s != runs[1].total_service_time_s

    def test_inactive_plan_is_no_plan(self, small_trace, assignment):
        base = Simulation(
            small_trace, assignment, POLICIES["pulse"](), SimulationConfig()
        ).run(engine="fast")
        noop = Simulation(
            small_trace, assignment, POLICIES["pulse"](),
            SimulationConfig(faults=FaultPlan()),
        ).run(engine="fast")
        assert noop.total_service_time_s == base.total_service_time_s
        assert noop.keepalive_cost_usd == base.keepalive_cost_usd
        assert noop.mean_accuracy == base.mean_accuracy
        assert noop.n_spawn_failures == 0

    def test_faults_never_lose_invocations(self, small_trace, assignment):
        # Spawn failures delay; they must not drop invocations.
        cfg = SimulationConfig(faults=SPAWN_PLAN)
        r = Simulation(
            small_trace, assignment, POLICIES["openwhisk"](), cfg
        ).run(engine="fast")
        assert r.n_invocations == small_trace.total_invocations()
        assert r.total_service_time_s > 0

    def test_config_rejects_non_plan(self):
        with pytest.raises(TypeError, match="faults"):
            SimulationConfig(faults={"spawn_failure_rate": 0.1})
