"""ResilientPolicy: crash isolation, degradation semantics, engine parity."""

from __future__ import annotations

import pytest
from tests.test_engine_fastpath import assert_identical, both_engines

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.faults.isolation import FALLBACK_WINDOW_MINUTES, ResilientPolicy
from repro.runtime.events import EventKind
from repro.runtime.simulator import Simulation, SimulationConfig


class CrashOnPlan(PulsePolicy):
    """PULSE that throws in ``plan`` for one function after a minute."""

    def __init__(self, crash_fid=2, after_minute=100):
        super().__init__()
        self.crash_fid = crash_fid
        self.after_minute = after_minute

    def plan(self, function_id, minute):
        if function_id == self.crash_fid and minute >= self.after_minute:
            raise RuntimeError("boom")
        return super().plan(function_id, minute)


class CrashOnColdVariant(OpenWhiskPolicy):
    def cold_variant(self, function_id, minute):
        if minute >= 60:
            raise ValueError("no container")
        return super().cold_variant(function_id, minute)


class CrashOnBind(OpenWhiskPolicy):
    def on_bind(self):
        raise RuntimeError("bad config")


class TestCrashIsolation:
    def test_plan_crash_degrades_one_function(self, small_trace, assignment):
        policy = ResilientPolicy(CrashOnPlan(crash_fid=2, after_minute=100))
        r = Simulation(
            small_trace, assignment, policy, SimulationConfig()
        ).run(engine="reference")
        assert r.n_policy_faults == 1
        assert list(policy.degraded_since) == [2]
        assert policy.degraded_since[2] >= 100
        assert r.n_degraded_minutes == small_trace.horizon - policy.degraded_since[2]
        # The run still serves every invocation.
        assert r.n_invocations == small_trace.total_invocations()

    def test_both_engines_identical_under_crash(self, small_trace, assignment):
        factory = lambda: ResilientPolicy(CrashOnPlan())  # noqa: E731
        ref, fast = both_engines(
            small_trace, assignment, factory, SimulationConfig()
        )
        assert ref.n_policy_faults == 1
        assert ref.n_degraded_minutes > 0
        assert_identical(ref, fast)

    def test_cold_variant_crash(self, small_trace, assignment):
        factory = lambda: ResilientPolicy(CrashOnColdVariant())  # noqa: E731
        ref, fast = both_engines(
            small_trace, assignment, factory, SimulationConfig()
        )
        assert ref.n_policy_faults > 0
        assert_identical(ref, fast)

    def test_bind_crash_degrades_everything(self, small_trace, assignment):
        policy = ResilientPolicy(CrashOnBind())
        r = Simulation(
            small_trace, assignment, policy, SimulationConfig()
        ).run(engine="fast")
        assert r.n_policy_faults == 1
        assert set(policy.degraded_since) == set(range(small_trace.n_functions))
        assert all(m == 0 for m in policy.degraded_since.values())
        assert r.n_degraded_minutes == small_trace.horizon * small_trace.n_functions
        assert r.n_invocations == small_trace.total_invocations()

    def test_healthy_policy_unchanged(self, small_trace, assignment):
        plain = Simulation(
            small_trace, assignment, OpenWhiskPolicy(), SimulationConfig()
        ).run(engine="fast")
        wrapped = Simulation(
            small_trace, assignment, ResilientPolicy(OpenWhiskPolicy()),
            SimulationConfig(),
        ).run(engine="fast")
        assert wrapped.n_policy_faults == 0
        assert wrapped.n_degraded_minutes == 0
        assert wrapped.total_service_time_s == plain.total_service_time_s
        assert wrapped.keepalive_cost_usd == plain.keepalive_cost_usd
        assert wrapped.mean_accuracy == plain.mean_accuracy
        assert wrapped.policy_name == plain.policy_name

    def test_fault_is_observable(self, small_trace, assignment):
        policy = ResilientPolicy(CrashOnPlan())
        r = Simulation(
            small_trace, assignment, policy,
            SimulationConfig(observe=True, record_events=True),
        ).run(engine="reference")
        faults = [rec for rec in r.obs.records if rec["kind"] == "policy_fault"]
        assert len(faults) == 1
        assert faults[0]["hook"] == "plan"
        assert faults[0]["error"] == "RuntimeError: boom"
        assert faults[0]["fid"] == 2
        events = [e for e in r.events if e.kind is EventKind.POLICY_FAULT]
        assert len(events) == 1

    def test_double_wrap_rejected(self):
        with pytest.raises(ValueError, match="already"):
            ResilientPolicy(ResilientPolicy(OpenWhiskPolicy()))

    def test_resilience_stats_shape(self):
        policy = ResilientPolicy(OpenWhiskPolicy())
        assert policy.resilience_stats(100) == {
            "n_policy_faults": 0,
            "n_degraded_minutes": 0,
        }

    def test_fallback_window_is_the_paper_default(self):
        assert FALLBACK_WINDOW_MINUTES == 10
