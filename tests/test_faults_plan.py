"""FaultPlan: validation, serialization round-trips, spec parsing,
trace perturbation determinism."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.faults.plan import FaultPlan
from repro.utils.specs import SpecError


class TestValidation:
    def test_defaults_are_inactive(self):
        plan = FaultPlan()
        assert not plan.active
        assert not plan.injects_runtime
        assert not plan.perturbs_trace
        assert not plan.has_pressure

    @pytest.mark.parametrize(
        "field",
        ["spawn_failure_rate", "cold_slowdown_rate", "pressure_rate",
         "drop_rate", "duplicate_rate", "jitter_rate"],
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_must_be_probabilities(self, field, value):
        kwargs = {field: value}
        if field == "pressure_rate":
            kwargs["pressure_cap_mb"] = 1000.0
        with pytest.raises(ValueError, match=field):
            FaultPlan(**kwargs)

    def test_pressure_needs_cap(self):
        with pytest.raises(ValueError, match="pressure_cap_mb"):
            FaultPlan(pressure_rate=0.1)

    def test_negative_knobs_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(max_spawn_retries=-1)
        with pytest.raises(ValueError):
            FaultPlan(retry_penalty_s=-1.0)
        with pytest.raises(ValueError):
            FaultPlan(cold_slowdown_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(pressure_cap_mb=0.0)

    def test_axis_properties(self):
        assert FaultPlan(spawn_failure_rate=0.1).injects_runtime
        assert FaultPlan(cold_slowdown_rate=0.1).injects_runtime
        assert FaultPlan(
            pressure_rate=0.1, pressure_cap_mb=1000.0
        ).injects_runtime
        assert FaultPlan(drop_rate=0.1).perturbs_trace
        assert not FaultPlan(drop_rate=0.1).injects_runtime
        assert FaultPlan(jitter_rate=0.1).active


PLAN = FaultPlan(
    seed=7, spawn_failure_rate=0.2, max_spawn_retries=3, retry_penalty_s=1.5,
    cold_slowdown_rate=0.1, cold_slowdown_factor=2.0,
    pressure_rate=0.05, pressure_cap_mb=4000.0,
    drop_rate=0.02, duplicate_rate=0.01, jitter_rate=0.03,
)


class TestSerialization:
    def test_dict_round_trip(self):
        assert FaultPlan.from_dict(PLAN.to_dict()) == PLAN

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({**PLAN.to_dict(), "bogus": 1})

    def test_pickle_round_trip(self):
        assert pickle.loads(pickle.dumps(PLAN)) == PLAN

    def test_spec_round_trip(self):
        spec = (
            "seed=7,spawn=0.2,retries=3,retry-penalty=1.5,slow=0.1,"
            "slow-factor=2.0,pressure=0.05,pressure-mb=4000,"
            "drop=0.02,dup=0.01,jitter=0.03"
        )
        assert FaultPlan.from_spec(spec) == PLAN

    def test_spec_unknown_key(self):
        with pytest.raises(SpecError, match="unknown key"):
            FaultPlan.from_spec("spwan=0.1")

    def test_spec_bad_value(self):
        with pytest.raises(SpecError, match="spawn"):
            FaultPlan.from_spec("spawn=lots")

    def test_spec_validation_still_applies(self):
        with pytest.raises(ValueError, match="pressure_cap_mb"):
            FaultPlan.from_spec("pressure=0.1")


class TestTracePerturbation:
    def test_deterministic_and_named(self, small_trace):
        plan = FaultPlan(seed=3, drop_rate=0.2, duplicate_rate=0.1,
                         jitter_rate=0.1)
        a = plan.perturb_trace(small_trace)
        b = plan.perturb_trace(small_trace)
        np.testing.assert_array_equal(a.counts, b.counts)
        assert a.name == f"{small_trace.name}+faults"
        assert a.n_functions == small_trace.n_functions
        assert a.horizon == small_trace.horizon

    def test_seed_changes_outcome(self, small_trace):
        a = FaultPlan(seed=1, drop_rate=0.3).perturb_trace(small_trace)
        b = FaultPlan(seed=2, drop_rate=0.3).perturb_trace(small_trace)
        assert (a.counts != b.counts).any()

    def test_drop_only_reduces(self, small_trace):
        perturbed = FaultPlan(seed=5, drop_rate=0.5).perturb_trace(small_trace)
        assert (perturbed.counts <= small_trace.counts).all()
        assert perturbed.counts.sum() < small_trace.counts.sum()

    def test_duplicate_only_increases(self, small_trace):
        perturbed = FaultPlan(
            seed=5, duplicate_rate=0.5
        ).perturb_trace(small_trace)
        assert (perturbed.counts >= small_trace.counts).all()
        assert perturbed.counts.sum() > small_trace.counts.sum()

    def test_jitter_preserves_totals(self, small_trace):
        perturbed = FaultPlan(seed=5, jitter_rate=0.5).perturb_trace(small_trace)
        assert perturbed.counts.sum() == small_trace.counts.sum()
        assert (perturbed.counts != small_trace.counts).any()
