"""Fleet observability: bit-identity, shard invariance, sampled traces.

The fleet engine's telemetry contract has three legs, all tested here:

- **Obs-on is metric-preserving.** ``FleetObsSession`` only *reads*
  columnar state — no RNG draws, no float-accumulation reorder — so a
  fleet run with ``observe=True`` must be bit-identical to ``observe=None``
  in every deterministic ``RunResult`` field and in the event stream,
  for any shard count, including under capacity-valve pressure.
- **Metric totals are shard-invariant.** The per-shard int64 partials
  merge exactly, so ``shards=1`` and ``shards=k`` report the same
  invocation/cold/plan/downgrade totals.
- **Sampled decision traces answer why-queries.** A deterministic
  sample of fids keeps full ``record_*`` streams (plans, colds,
  ``Uv = Ai + Pr + Ip`` downgrade candidate tables) that flow through
  the unchanged JSONL export into ``TraceIndex`` / ``repro inspect``.

Also home to the streaming sinks (``StreamingTraceWriter``, Prometheus
exposition) and the fleet section of the HTML report.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.pulse import PulsePolicy
from repro.obs.export import (
    StreamingTraceWriter,
    render_prometheus,
    trace_records,
    write_prometheus,
    write_trace_jsonl,
)
from repro.obs.fleet import CANDIDATE_CAP, FleetObsSession
from repro.obs.inspect import TraceIndex
from repro.obs.report import render_run_report
from repro.obs.session import ObservabilityConfig
from repro.runtime.simulator import Simulation, SimulationConfig
from tests.test_engine_fastpath import assert_identical

SHARD_COUNTS = (1, 2, 7)


def fleet_run(trace, assignment, cfg, shards):
    return Simulation(trace, assignment, PulsePolicy(), cfg).run(
        engine="fleet", shards=shards
    )


# ---------------------------------------------------------------------------
# Leg 1: obs-on == obs-off, bit for bit
# ---------------------------------------------------------------------------
class TestObsBitIdentity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_lean_config(self, small_trace, assignment, shards):
        cfg = SimulationConfig(record_series=False, track_containers=False)
        off = fleet_run(trace=small_trace, assignment=assignment,
                        cfg=replace(cfg, observe=None), shards=shards)
        on = fleet_run(trace=small_trace, assignment=assignment,
                       cfg=replace(cfg, observe=True), shards=shards)
        assert_identical(off, on)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_events_and_valve(self, small_trace, assignment, shards):
        cfg = SimulationConfig(
            record_events=True, memory_capacity_mb=4000.0, capacity_seed=11
        )
        off = fleet_run(small_trace, assignment, replace(cfg, observe=None),
                        shards)
        on = fleet_run(
            small_trace, assignment,
            replace(cfg, observe=ObservabilityConfig(trace_sample=12)),
            shards,
        )
        assert_identical(off, on)  # includes the event stream

    def test_summary_identical_modulo_wall_clock(self, small_trace, assignment):
        cfg = SimulationConfig(record_series=False, track_containers=False)
        off = fleet_run(small_trace, assignment, replace(cfg, observe=None), 4)
        on = fleet_run(small_trace, assignment, replace(cfg, observe=True), 4)
        s_off, s_on = off.summary(), on.summary()
        s_off.pop("wall_clock_s"), s_on.pop("wall_clock_s")
        assert s_off == s_on


# ---------------------------------------------------------------------------
# Leg 2: metric totals are shard-invariant
# ---------------------------------------------------------------------------
class TestShardInvariantMetrics:
    @pytest.fixture(scope="class")
    def sessions(self, small_trace):
        from repro.experiments.assignments import sample_assignment
        from repro.models.zoo import default_zoo

        assignment = sample_assignment(
            small_trace.n_functions, default_zoo(), seed=1
        )
        cfg = SimulationConfig(
            observe=True, memory_capacity_mb=4000.0, capacity_seed=11
        )
        return {
            s: fleet_run(small_trace, assignment, cfg, s).obs
            for s in SHARD_COUNTS
        }

    def test_sessions_are_fleet(self, sessions):
        assert all(
            isinstance(o, FleetObsSession) for o in sessions.values()
        )

    def test_totals_match_single_shard(self, sessions):
        base = sessions[1]
        for s, obs in sessions.items():
            assert obs.shard_invocations.sum() == base.shard_invocations.sum()
            assert obs.shard_cold.sum() == base.shard_cold.sum()
            np.testing.assert_array_equal(
                obs.plan_level_counts, base.plan_level_counts
            )
            np.testing.assert_array_equal(
                obs.downgrade_series, base.downgrade_series
            )
            np.testing.assert_array_equal(
                obs.valve_series, base.valve_series
            )
            np.testing.assert_array_equal(obs.mem_series, base.mem_series)
            assert obs.n_peaks == base.n_peaks

    def test_per_shard_partials_cover_the_fleet(self, sessions):
        # Each shard contributes, and the shard axis matches the run.
        obs = sessions[7]
        assert obs.shard_invocations.size == 7
        assert (obs.shard_invocations > 0).all()

    def test_totals_match_run_result(self, sessions, small_trace):
        obs = sessions[2]
        # shard_invocations tallies arrivals; mem series covers horizon.
        assert obs.mem_series.size == small_trace.horizon

    def test_span_tree_names_shards_and_reducer(self, sessions):
        tree = sessions[2].spans.tree()
        assert "shard-0" in tree and "shard-1" in tree
        assert "observe" in tree["shard-0"]["children"]
        assert "plan" in tree["shard-0"]["children"]
        assert "reduce" in tree


# ---------------------------------------------------------------------------
# Leg 3: sampled decision traces + inspect why-queries
# ---------------------------------------------------------------------------
class TestSampledTraces:
    @pytest.fixture(scope="class")
    def sampled_result(self, small_trace):
        from repro.experiments.assignments import sample_assignment
        from repro.models.zoo import default_zoo

        assignment = sample_assignment(
            small_trace.n_functions, default_zoo(), seed=1
        )
        # Sample every fid so any downgrade is guaranteed to be sampled.
        cfg = SimulationConfig(
            observe=ObservabilityConfig(trace_sample=small_trace.n_functions)
        )
        return Simulation(small_trace, assignment, PulsePolicy(), cfg).run(
            engine="fleet", shards=4
        )

    @pytest.fixture(scope="class")
    def index(self, sampled_result, tmp_path_factory):
        path = tmp_path_factory.mktemp("fleet-trace") / "run.jsonl"
        write_trace_jsonl(sampled_result, path)
        return TraceIndex.from_jsonl(path)

    def test_sample_is_deterministic(self, small_trace):
        a = FleetObsSession(
            ObservabilityConfig(trace_sample=4),
            n_functions=100, n_shards=2, horizon=10,
        )
        b = FleetObsSession(
            ObservabilityConfig(trace_sample=4),
            n_functions=100, n_shards=2, horizon=10,
        )
        np.testing.assert_array_equal(a.sample_fids, b.sample_fids)
        assert a.sample_fids.size == 4
        assert a.sample_mask.sum() == 4

    def test_partial_sample_records_only_sampled_fids(self, small_trace):
        from repro.experiments.assignments import sample_assignment
        from repro.models.zoo import default_zoo

        assignment = sample_assignment(
            small_trace.n_functions, default_zoo(), seed=1
        )
        cfg = SimulationConfig(
            observe=ObservabilityConfig(trace_sample=4)
        )
        result = Simulation(
            small_trace, assignment, PulsePolicy(), cfg
        ).run(engine="fleet", shards=4)
        obs = result.obs
        sampled = set(obs.sample_fids.tolist())
        fids = {
            r["fid"] for r in obs.records
            if r["kind"] in ("plan", "cold") and "fid" in r
        }
        assert fids, "sampled run recorded no decisions"
        assert fids <= sampled

    def test_inspect_explains_why_downgraded(self, index):
        scored = next(
            (d for d in index.downgrades if d.get("candidates")), None
        )
        assert scored is not None, "fleet run produced no scored downgrade"
        text = index.explain_downgrades(scored["fid"], scored["t"])
        assert "via Algorithm 2" in text
        assert "Uv" in text and "Ai" in text

    def test_inspect_explains_cold(self, index):
        fid, colds = next(iter(index._colds.items()))
        text = index.explain_cold(fid, colds[0]["t"])
        assert "cold" in text.lower()

    def test_candidate_tables_match_reference(self, small_trace, index):
        """Sampled fleet downgrade tables carry the same scores the
        reference loop records (modulo the CANDIDATE_CAP truncation,
        which cannot trigger at 12 functions)."""
        from repro.experiments.assignments import sample_assignment
        from repro.models.zoo import default_zoo

        assignment = sample_assignment(
            small_trace.n_functions, default_zoo(), seed=1
        )
        cfg = SimulationConfig(observe=True)
        ref = Simulation(
            small_trace, assignment, PulsePolicy(), cfg
        ).run(engine="reference")
        ref_tables = {
            (d["t"], d["fid"]): d["candidates"]
            for d in ref.obs.records
            if d["kind"] == "downgrade" and d.get("candidates")
        }
        fleet_tables = {
            (d["t"], d["fid"]): d["candidates"]
            for d in index.downgrades
            if d.get("candidates")
        }
        assert fleet_tables, "no fleet candidate tables recorded"
        for key, table in fleet_tables.items():
            assert key in ref_tables
            assert len(table) <= CANDIDATE_CAP + 1


# ---------------------------------------------------------------------------
# Streaming sinks
# ---------------------------------------------------------------------------
class TestStreamingSinks:
    @pytest.fixture(scope="class")
    def observed(self, small_trace):
        from repro.experiments.assignments import sample_assignment
        from repro.models.zoo import default_zoo

        assignment = sample_assignment(
            small_trace.n_functions, default_zoo(), seed=1
        )
        cfg = SimulationConfig(
            observe=ObservabilityConfig(trace_sample=8)
        )
        return Simulation(small_trace, assignment, PulsePolicy(), cfg).run(
            engine="fleet", shards=2
        )

    def test_streaming_writer_matches_batch_export(self, observed, tmp_path):
        batch = tmp_path / "batch.jsonl"
        write_trace_jsonl(observed, batch)
        streamed = tmp_path / "streamed.jsonl"
        with StreamingTraceWriter(streamed, flush_every=7) as w:
            for rec in observed.obs.records:
                w.write(rec)
            w.finalize(observed)
        assert streamed.read_bytes() == batch.read_bytes()
        assert not (tmp_path / "streamed.jsonl.part").exists()

    def test_streaming_writer_crash_keeps_sidecar(self, observed, tmp_path):
        target = tmp_path / "crash.jsonl"
        w = StreamingTraceWriter(target, flush_every=1)
        w.write({"kind": "plan", "t": 0})
        w.close()  # crash path: no finalize
        assert not target.exists()
        assert (tmp_path / "crash.jsonl.part").exists()

    def test_streaming_writer_rejects_bad_flush(self, tmp_path):
        with pytest.raises(ValueError):
            StreamingTraceWriter(tmp_path / "x.jsonl", flush_every=0)

    def test_prometheus_exposition(self, observed):
        text = render_prometheus(observed.obs)
        assert text.endswith("\n")
        assert "# TYPE invocations_total counter" in text
        assert 'invocations_total{shard="0"}' in text
        assert "# TYPE fleet_shards gauge" in text
        # Histograms render as summary-style _count/_sum/_min/_max.
        assert "_count" in text and "_sum" in text

    def test_write_prometheus(self, observed, tmp_path):
        path = tmp_path / "metrics.prom"
        n = write_prometheus(observed.obs, path)
        assert n == len(path.read_text().splitlines())

    def test_html_report_has_fleet_section(self, observed):
        html = render_run_report(observed)
        assert "Fleet telemetry" in html
        assert "shard" in html
        assert "sampled decision traces" in html

    def test_trace_records_roundtrip_fleet_session(self, observed):
        kinds = {r.get("kind") for r in trace_records(observed)}
        assert "metrics" in kinds and "spans" in kinds
