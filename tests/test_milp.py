"""Tests for repro.milp — formulation and policy."""

import numpy as np
import pytest

from repro.core.pulse import PulsePolicy
from repro.milp.formulation import build_peak_milp
from repro.milp.policy import MilpPolicy, solve_milp
from repro.runtime.simulator import Simulation, SimulationConfig


def build_problem(gpt, bert, budget, droppable=None, priorities=None, ips=None):
    alive = {0: gpt.highest, 1: bert.highest}
    assignment = {0: gpt, 1: bert}
    return build_peak_milp(
        alive=alive,
        assignment=assignment,
        priorities=priorities or {0: 0.0, 1: 0.0},
        invocation_probabilities=ips or {0: 0.5, 1: 0.5},
        droppable=droppable or {0: False, 1: False},
        budget=budget,
    )


class TestFormulation:
    def test_variable_count(self, gpt, bert):
        prob = build_problem(gpt, bert, budget=10_000)
        # GPT has 3 candidate levels, BERT 2.
        assert prob.n_variables == 5

    def test_only_downgrades_offered(self, gpt, bert):
        alive = {0: gpt.variant(1)}
        prob = build_peak_milp(
            alive=alive,
            assignment={0: gpt},
            priorities={0: 0.0},
            invocation_probabilities={0: 0.0},
            droppable={0: False},
            budget=1e6,
        )
        levels = [lv for _, lv in prob.options]
        assert set(levels) == {0, 1}  # level 2 (an upgrade) is absent

    def test_protected_set(self, gpt, bert):
        prob = build_problem(gpt, bert, 1e6, droppable={0: True, 1: False})
        assert prob.protected == frozenset({1})

    def test_negative_budget_rejected(self, gpt, bert):
        with pytest.raises(ValueError):
            build_problem(gpt, bert, budget=-1.0)

    def test_utilities_match_eq2(self, gpt, bert):
        prob = build_problem(
            gpt, bert, 1e6, priorities={0: 0.25, 1: 0.0}, ips={0: 0.5, 1: 0.0}
        )
        i = prob.function_rows[0][-1]  # GPT level 2
        expected = (93.45 - 92.35) / 100 + 0.25 + 0.5
        assert -prob.c[i] == pytest.approx(expected)


class TestSolve:
    def test_generous_budget_keeps_everything_cheap_or_better(self, gpt, bert):
        prob = build_problem(gpt, bert, budget=1e9)
        chosen = solve_milp(prob)
        assert set(chosen) == {0, 1}
        assert all(v is not None for v in chosen.values())

    def test_tight_budget_downgrades(self, gpt, bert):
        # Budget fits only the two lowest variants.
        budget = gpt.lowest.memory_mb + bert.lowest.memory_mb + 1.0
        prob = build_problem(gpt, bert, budget=budget)
        chosen = solve_milp(prob)
        assert chosen[0] == 0
        assert chosen[1] == 0

    def test_protected_functions_survive_infeasible_budget(self, gpt, bert):
        prob = build_problem(gpt, bert, budget=1.0)  # below any floor
        chosen = solve_milp(prob)
        assert chosen[0] is not None
        assert chosen[1] is not None

    def test_droppable_function_dropped_under_pressure(self, gpt, bert):
        budget = bert.lowest.memory_mb + 1.0
        prob = build_problem(
            gpt, bert, budget=budget, droppable={0: True, 1: False},
            ips={0: 0.0, 1: 0.5},
        )
        chosen = solve_milp(prob)
        assert chosen[0] is None  # GPT dropped
        assert chosen[1] == 0

    def test_empty_problem(self, gpt):
        prob = build_peak_milp(
            alive={}, assignment={}, priorities={}, invocation_probabilities={},
            droppable={}, budget=100.0,
        )
        assert solve_milp(prob) == {}


class TestMilpPolicy:
    def test_runs_end_to_end(self, small_trace, assignment):
        r = Simulation(small_trace, assignment, MilpPolicy()).run()
        assert r.policy_name == "MILP"
        assert r.n_invocations == small_trace.total_invocations()

    def test_accuracy_not_above_pulse(self, small_trace, assignment):
        # Paper: MILP favours lower-quality models -> accuracy <= PULSE.
        milp = Simulation(small_trace, assignment, MilpPolicy()).run()
        pulse = Simulation(small_trace, assignment, PulsePolicy()).run()
        assert milp.mean_accuracy <= pulse.mean_accuracy + 0.2

    def test_overhead_larger_than_pulse(self, small_trace, assignment):
        cfg = SimulationConfig(measure_overhead=True)
        milp = Simulation(small_trace, assignment, MilpPolicy(), cfg).run()
        pulse = Simulation(small_trace, assignment, PulsePolicy(), cfg).run()
        if milp.pool_stats is not None and MilpPolicy().n_solves == 0:
            pass  # no peaks in this trace: nothing to compare
        if milp.policy_overhead_s > 0 and pulse.policy_overhead_s > 0:
            assert milp.policy_overhead_s > pulse.policy_overhead_s

    def test_solve_counter(self, small_trace, assignment):
        p = MilpPolicy()
        Simulation(small_trace, assignment, p).run()
        assert p.n_solves == p.n_peak_minutes or p.n_solves <= p.n_peak_minutes
