"""Tests for repro.models.datasets."""

import numpy as np
import pytest

from repro.models.datasets import (
    DATASETS,
    Cifar10Like,
    CocoLike,
    Sst2Like,
    SyntheticInput,
    WikitextLike,
    dataset_for,
)


class TestSyntheticInput:
    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticInput(0, -1.0, 1.0)
        with pytest.raises(ValueError):
            SyntheticInput(0, 1.0, 0.0)


class TestRegistry:
    def test_table4_dataset_names(self):
        assert set(DATASETS) == {"sst2", "wikitext", "COCO", "CIFAR-10"}

    def test_lookup(self):
        assert dataset_for("sst2").task == "sentiment analysis"
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset_for("imagenet")

    def test_every_family_dataset_is_covered(self, zoo):
        for fam in zoo:
            assert fam.dataset in DATASETS


class TestSampling:
    @pytest.mark.parametrize("cls", [Sst2Like, WikitextLike, CocoLike, Cifar10Like])
    def test_mean_complexity_is_one(self, cls):
        inputs = cls().sample(2000, seed=0)
        mean = np.mean([i.complexity for i in inputs])
        assert mean == pytest.approx(1.0, abs=1e-9)

    @pytest.mark.parametrize("cls", [Sst2Like, WikitextLike, CocoLike, Cifar10Like])
    def test_deterministic(self, cls):
        a = cls().sample(20, seed=7)
        b = cls().sample(20, seed=7)
        assert [i.complexity for i in a] == [i.complexity for i in b]

    def test_wikitext_has_heavier_variation_than_sst2(self):
        wiki = np.array([i.complexity for i in WikitextLike().sample(3000, seed=1)])
        sst = np.array([i.complexity for i in Sst2Like().sample(3000, seed=1)])
        assert wiki.std() > sst.std()

    def test_cifar_is_constant(self):
        inputs = Cifar10Like().sample(100, seed=3)
        assert all(i.complexity == pytest.approx(1.0) for i in inputs)

    def test_coco_sizes_are_object_counts(self):
        inputs = CocoLike().sample(500, seed=2)
        sizes = np.array([i.size for i in inputs])
        assert sizes.max() <= 60
        assert 4 < sizes.mean() < 10  # COCO-like object density

    def test_n_validation(self):
        with pytest.raises(ValueError):
            Sst2Like().sample(0)


class TestProfilerIntegration:
    def test_warm_means_still_match_table1(self, zoo):
        from repro.models.profiler import LambdaProfiler

        report = LambdaProfiler(zoo, n_warm_samples=600, n_cold_samples=5, seed=4).run()
        for p in report:
            assert p.warm_mean_s == pytest.approx(
                p.variant.warm_service_time_s, rel=0.08
            )

    def test_gpt_latency_spread_exceeds_densenet(self, zoo):
        # wikitext's heavy-tailed prompts must show up as a wider warm
        # latency distribution for GPT than CIFAR-10 gives DenseNet.
        from repro.models.profiler import LambdaProfiler

        report = LambdaProfiler(zoo, n_warm_samples=600, n_cold_samples=5, seed=4).run()
        gpt = report.profile_for("GPT-Small")
        dn = report.profile_for("DenseNet-121")
        gpt_rel_spread = (gpt.warm_p99_s - gpt.warm_p50_s) / gpt.warm_mean_s
        dn_rel_spread = (dn.warm_p99_s - dn.warm_p50_s) / dn.warm_mean_s
        assert gpt_rel_spread > dn_rel_spread
