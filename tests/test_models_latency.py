"""Tests for repro.models.latency."""

import numpy as np
import pytest

from repro.models.latency import LatencyModel


class TestLatencyModel:
    def test_zero_cv_is_deterministic(self, gpt):
        lm = LatencyModel(warm_cv=0.0, cold_cv=0.0, seed=0)
        v = gpt.lowest
        assert lm.warm(v) == v.warm_service_time_s
        assert lm.cold(v) == v.cold_service_time_s

    def test_mean_close_to_variant_scalar(self, gpt):
        lm = LatencyModel(seed=0)
        v = gpt.highest
        samples = lm.warm(v, n=20000)
        assert samples.mean() == pytest.approx(v.warm_service_time_s, rel=0.02)

    def test_samples_positive(self, bert):
        lm = LatencyModel(warm_cv=0.3, cold_cv=0.5, seed=1)
        assert np.all(lm.cold(bert.lowest, n=1000) > 0)

    def test_cold_noisier_than_warm(self, gpt):
        lm = LatencyModel(warm_cv=0.05, cold_cv=0.15, seed=2)
        v = gpt.lowest
        warm_cv = np.std(lm.warm(v, n=5000)) / v.warm_service_time_s
        cold_cv = np.std(lm.cold(v, n=5000)) / v.cold_service_time_s
        assert cold_cv > warm_cv

    def test_reproducible_with_seed(self, gpt):
        a = LatencyModel(seed=5).warm(gpt.lowest, n=10)
        b = LatencyModel(seed=5).warm(gpt.lowest, n=10)
        np.testing.assert_array_equal(a, b)

    def test_scalar_vs_vector_shapes(self, gpt):
        lm = LatencyModel(seed=0)
        assert np.isscalar(lm.warm(gpt.lowest)) or isinstance(
            lm.warm(gpt.lowest), float
        )
        assert lm.warm(gpt.lowest, n=7).shape == (7,)

    @pytest.mark.parametrize("bad", [-0.1, 1.5])
    def test_rejects_bad_cv(self, bad):
        with pytest.raises(ValueError):
            LatencyModel(warm_cv=bad)
