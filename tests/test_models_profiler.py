"""Tests for repro.models.profiler — the simulated Lambda campaign."""

import pytest

from repro.models.profiler import LambdaProfiler, _SimulatedLambda
from repro.models.latency import LatencyModel


class TestSimulatedLambda:
    def test_first_invocation_is_cold(self, gpt):
        fn = _SimulatedLambda(gpt.lowest, LatencyModel(seed=0))
        _, cold = fn.invoke()
        assert cold

    def test_second_invocation_is_warm(self, gpt):
        fn = _SimulatedLambda(gpt.lowest, LatencyModel(seed=0))
        fn.invoke()
        _, cold = fn.invoke()
        assert not cold

    def test_memory_change_forces_cold(self, gpt):
        fn = _SimulatedLambda(gpt.lowest, LatencyModel(seed=0))
        fn.invoke()
        original = fn.memory_size
        fn.set_memory_size(original + 64)
        fn.invoke()
        fn.set_memory_size(original)
        _, cold = fn.invoke()
        assert cold

    def test_rejects_bad_memory(self, gpt):
        fn = _SimulatedLambda(gpt.lowest, LatencyModel(seed=0))
        with pytest.raises(ValueError):
            fn.set_memory_size(0)


class TestLambdaProfiler:
    @pytest.fixture(scope="class")
    def report(self, zoo):
        return LambdaProfiler(
            zoo, n_warm_samples=200, n_cold_samples=10, seed=3
        ).run()

    def test_profiles_every_variant(self, zoo, report):
        assert len(report) == len(zoo.all_variants())

    def test_measured_warm_mean_close_to_truth(self, zoo, report):
        for p in report:
            assert p.warm_mean_s == pytest.approx(
                p.variant.warm_service_time_s, rel=0.05
            )

    def test_measured_cold_mean_close_to_truth(self, report):
        for p in report:
            assert p.cold_mean_s == pytest.approx(
                p.variant.cold_service_time_s, rel=0.20
            )

    def test_cold_penalty_positive(self, report):
        for p in report:
            assert p.cold_start_penalty_s > 0

    def test_keepalive_cost_matches_published(self, report):
        gpt_large = report.profile_for("GPT-Large")
        assert gpt_large.keepalive_cost_cents_per_hour == pytest.approx(
            41.71, rel=0.02
        )

    def test_rows_have_table1_columns(self, report):
        rows = report.as_rows()
        assert {"model", "service_time_s", "keepalive_cost_cents_per_hour",
                "accuracy_percent"} <= set(rows[0])

    def test_profile_for_unknown_raises(self, report):
        with pytest.raises(KeyError):
            report.profile_for("GPT-XL")

    def test_percentiles_ordered(self, report):
        for p in report:
            assert p.warm_p50_s <= p.warm_p99_s

    def test_deterministic_given_seed(self, zoo):
        a = LambdaProfiler(zoo, n_warm_samples=50, n_cold_samples=5, seed=9).run()
        b = LambdaProfiler(zoo, n_warm_samples=50, n_cold_samples=5, seed=9).run()
        assert [p.warm_mean_s for p in a] == [p.warm_mean_s for p in b]
