"""Tests for repro.models.variants."""

import pytest

from repro.models.variants import ModelFamily, ModelVariant


def make_variant(level=0, family="Fam", accuracy=70.0, **kw):
    defaults = dict(
        family=family,
        name=f"{family}-v{level}",
        level=level,
        accuracy=accuracy,
        warm_service_time_s=1.0 + level,
        cold_service_time_s=5.0 + level,
        keepalive_cost_cents_per_hour=2.0 + level,
        memory_mb=100.0 * (level + 1),
    )
    defaults.update(kw)
    return ModelVariant(**defaults)


def make_family(accuracies=(70.0, 80.0, 90.0), name="Fam"):
    return ModelFamily(
        name=name,
        task="test",
        dataset="synthetic",
        variants=tuple(
            make_variant(level=i, family=name, accuracy=a)
            for i, a in enumerate(accuracies)
        ),
    )


class TestModelVariant:
    def test_accuracy_fraction(self):
        assert make_variant(accuracy=87.65).accuracy_fraction == pytest.approx(0.8765)

    def test_cold_start_penalty(self):
        v = make_variant()
        assert v.cold_start_penalty_s == pytest.approx(
            v.cold_service_time_s - v.warm_service_time_s
        )

    def test_rejects_cold_faster_than_warm(self):
        with pytest.raises(ValueError, match="cold_service_time_s"):
            make_variant(warm_service_time_s=5.0, cold_service_time_s=1.0)

    @pytest.mark.parametrize("acc", [-1.0, 100.1])
    def test_rejects_bad_accuracy(self, acc):
        with pytest.raises(ValueError, match="accuracy"):
            make_variant(accuracy=acc)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            make_variant(name="")

    def test_rejects_non_positive_memory(self):
        with pytest.raises(ValueError, match="memory_mb"):
            make_variant(memory_mb=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            make_variant().accuracy = 50.0


class TestModelFamily:
    def test_ordering_accessors(self):
        fam = make_family()
        assert fam.lowest.accuracy == 70.0
        assert fam.highest.accuracy == 90.0
        assert fam.n_variants == 3
        assert [v.level for v in fam] == [0, 1, 2]

    def test_variant_lookup(self):
        fam = make_family()
        assert fam.variant(1).accuracy == 80.0
        with pytest.raises(IndexError):
            fam.variant(3)
        with pytest.raises(IndexError):
            fam.variant(-1)

    def test_downgrade_chain(self):
        fam = make_family()
        v = fam.highest
        v = fam.downgrade(v)
        assert v.level == 1
        v = fam.downgrade(v)
        assert v.level == 0
        assert fam.downgrade(v) is None

    def test_upgrade_chain(self):
        fam = make_family()
        assert fam.upgrade(fam.lowest).level == 1
        assert fam.upgrade(fam.highest) is None

    def test_accuracy_improvement_delta(self):
        fam = make_family()
        assert fam.accuracy_improvement(fam.variant(2)) == pytest.approx(0.10)
        assert fam.accuracy_improvement(fam.variant(1)) == pytest.approx(0.10)

    def test_accuracy_improvement_lowest_is_own_accuracy(self):
        fam = make_family()
        # Paper: lowest variant's Ai is its accuracy in decimal form.
        assert fam.accuracy_improvement(fam.lowest) == pytest.approx(0.70)

    def test_rejects_unordered_variants(self):
        with pytest.raises(ValueError, match="increasing accuracy"):
            make_family(accuracies=(90.0, 80.0))

    def test_rejects_wrong_levels(self):
        good = make_variant(level=0)
        bad = make_variant(level=2, accuracy=95.0)
        with pytest.raises(ValueError, match="level"):
            ModelFamily(name="Fam", task="t", dataset="d", variants=(good, bad))

    def test_rejects_foreign_variant(self):
        fam = make_family()
        other = make_variant(level=0, family="Other")
        with pytest.raises(ValueError, match="not a member"):
            fam.downgrade(other)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            ModelFamily(name="Fam", task="t", dataset="d", variants=())

    def test_single_variant_family(self):
        fam = make_family(accuracies=(75.0,))
        assert fam.lowest is fam.highest
        assert fam.downgrade(fam.lowest) is None
        assert fam.accuracy_improvement(fam.lowest) == pytest.approx(0.75)
