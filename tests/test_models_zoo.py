"""Tests for repro.models.zoo — the paper's Table I / Table IV data."""

import pytest

from repro.models.variants import ModelFamily
from repro.models.zoo import (
    IMPLIED_PRICE_CENTS_PER_MB_HOUR,
    ModelZoo,
    default_zoo,
)


@pytest.fixture(scope="module")
def zoo():
    return default_zoo()


class TestDefaultZooContents:
    def test_table4_families_present(self, zoo):
        assert set(zoo.family_names) == {"BERT", "YOLO", "GPT", "ResNet", "DenseNet"}

    @pytest.mark.parametrize(
        "family,n", [("BERT", 2), ("YOLO", 3), ("GPT", 3), ("ResNet", 3), ("DenseNet", 3)]
    )
    def test_variant_counts_match_table4(self, zoo, family, n):
        assert zoo.family(family).n_variants == n

    @pytest.mark.parametrize(
        "name,service,cost,acc",
        [
            ("GPT-Small", 12.90, 11.7, 87.65),
            ("GPT-Medium", 22.50, 22.57, 92.35),
            ("GPT-Large", 23.66, 41.71, 93.45),
            ("BERT-Small", 1.09, 4.392, 79.6),
            ("BERT-Large", 2.21, 6.12, 82.1),
            ("DenseNet-121", 1.09, 3.46, 74.98),
            ("DenseNet-169", 1.38, 3.53, 76.2),
            ("DenseNet-201", 1.65, 4.07, 77.42),
        ],
    )
    def test_table1_published_scalars(self, zoo, name, service, cost, acc):
        family = name.split("-")[0]
        variant = next(v for v in zoo.family(family) if v.name == name)
        assert variant.warm_service_time_s == pytest.approx(service)
        assert variant.keepalive_cost_cents_per_hour == pytest.approx(cost)
        assert variant.accuracy == pytest.approx(acc)

    def test_yolo_lowest_accuracy_from_paper_text(self, zoo):
        # §III-B: "YOLO's lowest accuracy variant has an accuracy of 56.8%"
        assert zoo.family("YOLO").lowest.accuracy == pytest.approx(56.8)

    def test_memory_within_papers_stated_range(self, zoo):
        for v in zoo.all_variants():
            assert 200.0 <= v.memory_mb <= 3501.0

    def test_gpt_large_anchored_at_3500mb(self, zoo):
        assert zoo.family("GPT").highest.memory_mb == pytest.approx(3500.0, rel=1e-3)

    def test_cost_memory_consistency(self, zoo):
        for v in zoo.all_variants():
            assert v.keepalive_cost_cents_per_hour == pytest.approx(
                v.memory_mb * IMPLIED_PRICE_CENTS_PER_MB_HOUR, rel=1e-2
            )

    def test_cold_exceeds_warm_everywhere(self, zoo):
        for v in zoo.all_variants():
            assert v.cold_service_time_s > v.warm_service_time_s

    def test_bigger_variant_costs_more_within_family(self, zoo):
        for fam in zoo:
            costs = [v.keepalive_cost_cents_per_hour for v in fam]
            assert costs == sorted(costs)


class TestModelZooApi:
    def test_len_and_iter(self, zoo):
        assert len(zoo) == 5
        assert all(isinstance(f, ModelFamily) for f in zoo)

    def test_contains(self, zoo):
        assert "GPT" in zoo
        assert "LLaMA" not in zoo

    def test_unknown_family_raises(self, zoo):
        with pytest.raises(KeyError, match="unknown family"):
            zoo.family("LLaMA")

    def test_family_of(self, zoo):
        v = zoo.family("BERT").lowest
        assert zoo.family_of(v).name == "BERT"

    def test_all_variants_count(self, zoo):
        assert len(zoo.all_variants()) == 14

    def test_duplicate_family_rejected(self, zoo):
        fam = zoo.family("GPT")
        with pytest.raises(ValueError, match="duplicate"):
            ModelZoo([fam, fam])

    def test_empty_zoo_rejected(self):
        with pytest.raises(ValueError):
            ModelZoo([])

    def test_table1_rows_shape(self, zoo):
        rows = zoo.table1_rows()
        assert len(rows) == 14
        assert {"model", "service_time_s", "accuracy_percent"} <= set(rows[0])
