"""Golden equivalence: observability on vs off, both engines.

The tentpole guarantee of :mod:`repro.obs` is that instrumentation is
*metric-preserving*: recording decisions, metrics and spans must not
change a single headline number. Recorders only read simulation state —
they draw no randomness and reorder no float accumulation — so every
deterministic ``RunResult`` field must be **bit-identical** with
``observe=True`` and ``observe=None``, on the reference loop and the
fast path alike, for every bundled policy family.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.baselines.static import AllLowQualityPolicy, RandomMixedPolicy
from repro.core.pulse import PulsePolicy
from repro.milp.policy import MilpPolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.sota.icebreaker import IceBreakerPolicy
from repro.sota.integration import PulseIntegratedPolicy
from repro.sota.wild import WildPolicy

POLICIES = {
    "openwhisk": OpenWhiskPolicy,
    "all-low": AllLowQualityPolicy,
    "random-mixed": lambda: RandomMixedPolicy(seed=3),
    "pulse": PulsePolicy,
    "wild": WildPolicy,
    "icebreaker": IceBreakerPolicy,
    "integrated-wild": lambda: PulseIntegratedPolicy(WildPolicy()),
}

#: Every RunResult field that must not move when observability turns on.
HEADLINE = (
    "n_invocations",
    "n_warm",
    "n_cold",
    "n_forced_downgrades",
    "total_service_time_s",
    "keepalive_cost_usd",
    "mean_accuracy",
)


def run_pair(trace, assignment, factory, cfg, engine="auto"):
    off = Simulation(
        trace, assignment, factory(), replace(cfg, observe=None)
    ).run(engine=engine)
    on = Simulation(
        trace, assignment, factory(), replace(cfg, observe=True)
    ).run(engine=engine)
    return off, on


def assert_headline_identical(off, on):
    assert off.obs is None and on.obs is not None
    for field in HEADLINE:
        a, b = getattr(off, field), getattr(on, field)
        assert a == b, f"{field}: {a!r} != {b!r} with observability on"
    for a, b in (
        (off.memory_series_mb, on.memory_series_mb),
        (off.ideal_memory_series_mb, on.ideal_memory_series_mb),
    ):
        assert (a is None) == (b is None)
        if a is not None:
            np.testing.assert_array_equal(a, b)
    if off.events is not None:
        # Observability must not perturb the event stream either (events
        # are recorded by the same code paths the recorder hooks into).
        assert list(on.events) == list(off.events)


class TestObservabilityEquivalence:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_all_policies_both_engines(self, small_trace, assignment, name, engine):
        cfg = SimulationConfig()
        assert_headline_identical(
            *run_pair(small_trace, assignment, POLICIES[name], cfg, engine)
        )

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_milp(self, tiny_trace, tiny_assignment, engine):
        cfg = SimulationConfig()
        assert_headline_identical(
            *run_pair(tiny_trace, tiny_assignment, MilpPolicy, cfg, engine)
        )

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_with_events_and_capacity_valve(self, small_trace, assignment, engine):
        # The valve shares an RNG stream with nothing else, but its draws
        # must stay aligned run-to-run: the recorder must not consume or
        # reseed it.
        cfg = SimulationConfig(
            record_events=True,
            memory_capacity_mb=4000.0, capacity_seed=11,
        )
        off, on = run_pair(small_trace, assignment, POLICIES["pulse"], cfg, engine)
        assert off.n_forced_downgrades > 0  # the axis is exercised
        assert_headline_identical(off, on)

    def test_engines_agree_while_observed(self, small_trace, assignment):
        # Cross-check: with observability on, fast vs reference still match
        # (the existing engine-equivalence suite runs unobserved).
        ref = Simulation(
            small_trace, assignment, PulsePolicy(),
            SimulationConfig(observe=True),
        ).run(engine="reference")
        fast = Simulation(
            small_trace, assignment, PulsePolicy(),
            SimulationConfig(observe=True),
        ).run(engine="fast")
        for field in HEADLINE:
            assert getattr(ref, field) == getattr(fast, field), field
        # Both engines record the same decisions in the same order.
        assert [r["kind"] for r in ref.obs.records] == [
            r["kind"] for r in fast.obs.records
        ]
        assert ref.obs.records == fast.obs.records

    def test_wall_clock_and_engine_total_populated(self, small_trace, assignment):
        _, on = run_pair(
            small_trace, assignment, POLICIES["pulse"], SimulationConfig()
        )
        assert on.wall_clock_s > 0.0
        assert on.obs.spans.count("engine-total") == 1
        # Phase time is a decomposition of (part of) the run: it cannot
        # exceed the engine's own wall clock.
        assert on.obs.spans.total_seconds <= on.obs.spans.seconds("engine-total")
