"""Tests for repro.obs.export, repro.obs.report and sweep telemetry merging."""

import json

import pytest

from repro.core.pulse import PulsePolicy
from repro.experiments.runner import (
    ExperimentConfig,
    default_trace,
    merged_telemetry,
    run_policies,
)
from repro.obs.export import (
    TRACE_SCHEMA_VERSION,
    merge_sessions,
    merged_flat_metrics,
    read_trace_jsonl,
    trace_records,
    write_trace_jsonl,
)
from repro.obs.report import render_run_report, save_run_report
from repro.obs.session import ObservabilityConfig, ObsSession
from repro.runtime.simulator import Simulation, SimulationConfig


@pytest.fixture(scope="module")
def observed_result(small_trace, assignment_module):
    cfg = SimulationConfig(observe=True, record_events=True)
    return Simulation(small_trace, assignment_module, PulsePolicy(), cfg).run()


@pytest.fixture(scope="module")
def assignment_module(small_trace):
    from repro.experiments.assignments import sample_assignment
    from repro.models.zoo import default_zoo

    return sample_assignment(small_trace.n_functions, default_zoo(), seed=1)


class TestTraceJsonl:
    def test_header_first_and_self_describing(self, observed_result):
        records = list(trace_records(observed_result))
        header = records[0]
        assert header["kind"] == "header"
        assert header["schema_version"] == TRACE_SCHEMA_VERSION
        assert header["policy"] == observed_result.policy_name
        assert header["n_cold"] == observed_result.n_cold
        assert header["keepalive_cost_usd"] == observed_result.keepalive_cost_usd

    def test_tail_records(self, observed_result):
        records = list(trace_records(observed_result))
        assert records[-2]["kind"] == "metrics"
        assert records[-1]["kind"] == "spans"
        assert records[-2]["values"] == observed_result.flat_metrics()
        assert "estimate" in records[-1]["phases"]

    def test_roundtrip(self, observed_result, tmp_path):
        path = tmp_path / "run.jsonl"
        n = write_trace_jsonl(observed_result, path)
        loaded = read_trace_jsonl(path)
        assert len(loaded) == n
        assert loaded == list(trace_records(observed_result))

    def test_every_line_is_json(self, observed_result, tmp_path):
        path = tmp_path / "run.jsonl"
        write_trace_jsonl(observed_result, path)
        for line in path.read_text().splitlines():
            json.loads(line)  # raises on any malformed line

    def test_blank_lines_skipped(self, observed_result, tmp_path):
        path = tmp_path / "run.jsonl"
        n = write_trace_jsonl(observed_result, path)
        path.write_text(path.read_text().replace("\n", "\n\n"))
        assert len(read_trace_jsonl(path)) == n

    def test_unobserved_run_rejected(self, small_trace, assignment_module):
        r = Simulation(
            small_trace, assignment_module, PulsePolicy(), SimulationConfig()
        ).run()
        with pytest.raises(ValueError, match="observe=True"):
            list(trace_records(r))


class TestMergeSessions:
    def test_merge_counts_runs(self):
        sessions = []
        for i in range(3):
            s = ObsSession()
            s.metrics.counter("hits").inc(float(i + 1))
            s.record_cold(0, 0, "v", 1, None)
            sessions.append(s)
        merged = merge_sessions(sessions)
        assert merged.n_runs == 3
        assert merged.metrics.counter("hits").value() == 6.0
        assert merged.records == []

    def test_disabled_inputs_skipped(self):
        assert merge_sessions([None, None]) is None
        assert merge_sessions([]) is None

    def test_merged_flat_metrics(self):
        s = ObsSession()
        s.metrics.counter("hits").inc(2.0)
        out = merged_flat_metrics({"pulse": s, "openwhisk": None})
        assert out == {"pulse": {"hits": 2.0}}


class TestMergedTelemetry:
    def test_sweep_merge_across_processes(self):
        cfg = ExperimentConfig(
            n_runs=4, horizon_minutes=240, seed=5, n_jobs=2,
            sim=SimulationConfig(observe=True),
        )
        trace = default_trace(cfg)
        results = run_policies(trace, {"pulse": PulsePolicy}, cfg)
        tel = merged_telemetry(results)
        merged = tel["pulse"]
        assert merged.n_runs == 4
        flat = merged.metrics.as_flat_dict()
        total_inv = sum(
            v for k, v in flat.items() if k.startswith("invocations_total")
        )
        assert total_inv == sum(r.n_invocations for r in results["pulse"])
        assert merged.spans.count("engine-total") == 4

    def test_unobserved_sweep_is_empty(self):
        cfg = ExperimentConfig(n_runs=2, horizon_minutes=120, seed=5)
        trace = default_trace(cfg)
        results = run_policies(trace, {"pulse": PulsePolicy}, cfg)
        assert merged_telemetry(results) == {}


class TestRunReport:
    def test_report_contains_summary_and_phases(self, observed_result):
        html = render_run_report(observed_result)
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert observed_result.policy_name in html
        assert "keepalive_cost_usd" in html
        assert "downgrade-select" in html  # span phase table
        assert "<svg" in html  # memory chart embedded

    def test_save(self, observed_result, tmp_path):
        out = save_run_report(observed_result, tmp_path / "run.html")
        assert out.exists() and out.stat().st_size > 1000

    def test_unobserved_run_renders_with_note(
        self, small_trace, assignment_module
    ):
        r = Simulation(
            small_trace, assignment_module, PulsePolicy(), SimulationConfig()
        ).run()
        html = render_run_report(r)
        assert "observe" in html  # points the reader at the flag

    def test_decisions_off_still_renders(self, small_trace, assignment_module):
        cfg = SimulationConfig(
            observe=ObservabilityConfig(decisions=False, spans=False)
        )
        r = Simulation(small_trace, assignment_module, PulsePolicy(), cfg).run()
        html = render_run_report(r, title="metrics only")
        assert "metrics only" in html
