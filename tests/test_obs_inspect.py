"""Tests for repro.obs.inspect and the simulate/inspect CLI surface."""

import pytest

from repro.cli import main
from repro.core.pulse import PulsePolicy
from repro.experiments.assignments import sample_assignment
from repro.models.zoo import default_zoo
from repro.obs.export import write_trace_jsonl
from repro.obs.inspect import TraceIndex
from repro.runtime.simulator import Simulation, SimulationConfig


@pytest.fixture(scope="module")
def observed(small_trace):
    assignment = sample_assignment(small_trace.n_functions, default_zoo(), seed=1)
    cfg = SimulationConfig(observe=True)
    return Simulation(small_trace, assignment, PulsePolicy(), cfg).run()


@pytest.fixture(scope="module")
def index(observed, tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    write_trace_jsonl(observed, path)
    return TraceIndex.from_jsonl(path)


def _first_cold_with_history(index):
    for fid, colds in index._colds.items():
        for rec in colds:
            if rec["last_arrival"] is not None:
                return rec
    pytest.skip("trace has no repeat cold start")


class TestTraceIndex:
    def test_summary_lines(self, index, observed):
        text = index.summary()
        assert f"policy={observed.policy_name}" in text
        assert f"cold={observed.n_cold}" in text
        assert "plans" in text and "downgrades" in text
        assert "phases:" in text

    def test_explain_first_arrival(self, index):
        # The very first cold start of any function has no prior plan.
        first = min(
            (recs[0] for recs in index._colds.values()), key=lambda r: r["t"]
        )
        text = index.explain_cold(first["fid"], first["t"])
        assert "first recorded arrival" in text

    def test_explain_cold_names_a_cause(self, index):
        rec = _first_cold_with_history(index)
        text = index.explain_cold(rec["fid"], rec["t"])
        assert "cold-started" in text
        assert "cause:" in text

    def test_explain_cold_no_record(self, index):
        text = index.explain_cold(0, 10**6)
        assert "no cold start recorded" in text

    def test_explain_plan_table(self, index):
        fid, recs = next(iter(index._plans.items()))
        plan = recs[0]
        text = index.explain_plan(fid, plan["t"])
        assert f"installed at minute {plan['t']}" in text
        assert "P(arrival)" in text
        # One table row per plan offset.
        assert text.count("\n") >= len(plan["levels"])

    def test_explain_plan_missing(self, index):
        assert "no plan recorded" in index.explain_plan(0, -1)

    def test_explain_downgrade_terms(self, index):
        scored = next(
            (d for d in index.downgrades if d.get("candidates")), None
        )
        assert scored is not None, "PULSE run produced no scored downgrade"
        text = index.explain_downgrades(scored["fid"], scored["t"])
        assert "via Algorithm 2" in text
        for term in ("Ai", "Pr", "Ip", "Uv"):
            assert term in text
        assert "<- min Uv" in text

    def test_explain_downgrades_empty_filter(self, index):
        assert "no downgrades recorded" in index.explain_downgrades(10**6)


class TestCli:
    def _simulate(self, tmp_path, *extra):
        return main([
            "simulate", "pulse", "--horizon", "240", "--seed", "7", *extra,
        ])

    def test_trace_out_and_inspect(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        assert self._simulate(tmp_path, "--trace-out", str(trace)) == 0
        out = capsys.readouterr().out
        assert "trace records" in out
        assert trace.exists()

        assert main(["inspect", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "policy=PULSE" in out
        assert "records:" in out

    def test_inspect_queries(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        self._simulate(tmp_path, "--trace-out", str(trace))
        capsys.readouterr()
        index = TraceIndex.from_jsonl(trace)
        rec = _first_cold_with_history(index)
        spec = f"{rec['fid']}:{rec['t']}"
        assert main(["inspect", str(trace), "--cold", spec,
                     "--plan", spec, "--downgrades"]) == 0
        out = capsys.readouterr().out
        assert "cold-started" in out or "no cold start" in out
        assert "P(arrival)" in out

    def test_report_out(self, tmp_path, capsys):
        report = tmp_path / "run.html"
        assert self._simulate(tmp_path, "--report-out", str(report)) == 0
        capsys.readouterr()
        assert report.exists()
        assert "<svg" in report.read_text()

    def test_trace_out_needs_single_policy(self, tmp_path, capsys):
        code = main([
            "simulate", "pulse", "openwhisk", "--horizon", "120",
            "--trace-out", str(tmp_path / "x.jsonl"),
        ])
        assert code == 2
        assert "exactly one policy" in capsys.readouterr().err

    def test_inspect_missing_file(self, tmp_path, capsys):
        assert main(["inspect", str(tmp_path / "nope.jsonl")]) == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_table_has_no_wall_clock_column(self, capsys):
        assert main(["simulate", "openwhisk", "--horizon", "120"]) == 0
        out = capsys.readouterr().out
        assert "wall_clock" not in out
        assert "n_forced_downgrades" in out
