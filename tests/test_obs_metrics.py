"""Tests for repro.obs.metrics and repro.obs.spans."""

import pickle

import pytest

from repro.obs.metrics import (
    Counter,
    Histogram,
    HistogramSummary,
    MetricsRegistry,
)
from repro.obs.spans import SpanTimer


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("hits")
        c.inc()
        c.inc(2.0)
        assert c.value() == 3.0
        assert c.total() == 3.0

    def test_labeled_series_are_independent(self):
        c = Counter("hits")
        c.inc(function=0)
        c.inc(5.0, function=1)
        assert c.value(function=0) == 1.0
        assert c.value(function=1) == 5.0
        assert c.value(function=2) == 0.0
        assert c.total() == 6.0

    def test_label_order_canonicalized(self):
        c = Counter("hits")
        c.inc(a=1, b=2)
        c.inc(b=2, a=1)
        assert c.value(a=1, b=2) == 2.0
        assert len(c.series) == 1

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("hits").inc(-1.0)

    def test_bound_handle_hits_same_series(self):
        c = Counter("hits")
        bound = c.labels(function=7)
        bound.inc()
        bound.inc(3.0)
        assert c.value(function=7) == 4.0


class TestGaugeAndHistogram:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        g = reg.gauge("mem")
        g.set(10.0)
        g.set(20.0)
        assert g.value() == 20.0

    def test_histogram_summary_moments(self):
        h = Histogram("mb")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        s = h.summary()
        assert (s.count, s.total, s.min, s.max) == (3, 6.0, 1.0, 3.0)
        assert s.mean == pytest.approx(2.0)

    def test_observe_many_matches_observe(self):
        a, b = Histogram("x"), Histogram("x")
        values = [5.0, 0.0, 2.5]
        a.observe_many(values)
        for v in values:
            b.observe(v)
        assert a.summary() == b.summary()

    def test_empty_summary_as_dict(self):
        assert HistogramSummary().as_dict() == {
            "count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0,
        }

    def test_summary_merge(self):
        a, b = HistogramSummary(), HistogramSummary()
        a.observe(1.0)
        b.observe(9.0)
        a.merge(b)
        assert (a.count, a.total, a.min, a.max) == (2, 10.0, 1.0, 9.0)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_len_counts_series_not_metrics(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        c.inc(function=0)
        c.inc(function=1)
        reg.gauge("b").set(1.0)
        assert len(reg) == 3

    def test_as_flat_dict(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2.0, function=3)
        reg.gauge("mem").set(100.0)
        reg.histogram("mb").observe(5.0)
        flat = reg.as_flat_dict()
        assert flat["hits{function=3}"] == 2.0
        assert flat["mem"] == 100.0
        assert flat["mb_count"] == 1.0
        assert flat["mb_sum"] == 5.0

    def test_merge_accumulates_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(1.0)
        b.counter("hits").inc(2.0)
        a.histogram("mb").observe(1.0)
        b.histogram("mb").observe(3.0)
        a.gauge("g").set(5.0)
        b.gauge("g").set(7.0)
        a.merge(b)
        assert a.counter("hits").value() == 3.0
        assert a.histogram("mb").summary().count == 2
        assert a.gauge("g").value() == 7.0  # last write wins

    def test_merge_into_empty(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.counter("hits").inc(4.0, function=1)
        a.merge(b)
        assert a.counter("hits").value(function=1) == 4.0

    def test_picklable(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2.0, function=0)
        reg.histogram("mb").observe(1.5)
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.as_flat_dict() == reg.as_flat_dict()


class TestSpanTimer:
    def test_add_accumulates(self):
        t = SpanTimer()
        t.add("estimate", 0.5)
        t.add("estimate", 0.25)
        assert t.seconds("estimate") == pytest.approx(0.75)
        assert t.count("estimate") == 2
        assert t.seconds("missing") == 0.0 and t.count("missing") == 0

    def test_span_context_manager(self):
        t = SpanTimer()
        with t.span("work"):
            pass
        assert t.count("work") == 1
        assert t.seconds("work") >= 0.0

    def test_total_excludes_engine_total(self):
        t = SpanTimer()
        t.add("estimate", 1.0)
        t.add("band-mapping", 2.0)
        t.add("engine-total", 10.0)
        assert t.total_seconds == pytest.approx(3.0)
        assert sorted(t.phases) == ["band-mapping", "engine-total", "estimate"]

    def test_merge(self):
        a, b = SpanTimer(), SpanTimer()
        a.add("x", 1.0)
        b.add("x", 2.0)
        b.add("y", 3.0)
        a.merge(b)
        assert a.seconds("x") == pytest.approx(3.0)
        assert a.count("x") == 2
        assert a.seconds("y") == pytest.approx(3.0)

    def test_as_dict_and_pickle(self):
        t = SpanTimer()
        t.add("x", 1.5)
        assert t.as_dict() == {"x": {"seconds": 1.5, "count": 1.0}}
        clone = pickle.loads(pickle.dumps(t))
        assert clone.as_dict() == t.as_dict()

    def test_bool_and_len(self):
        t = SpanTimer()
        assert not t and len(t) == 0
        t.add("x", 0.1)
        assert t and len(t) == 1
