"""Tests for repro.obs.session: the live session, NULL_OBS, and the
engine's disabled-path guarantees (nothing allocated when observe is off)."""

import math
import pickle

import numpy as np
import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.obs.session import NULL_OBS, ObservabilityConfig, ObsSession
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import FunctionSpec, Trace


class FakeVariant:
    def __init__(self, level, name):
        self.level = level
        self.name = name


class TestObservabilityConfig:
    def test_defaults_all_on(self):
        cfg = ObservabilityConfig()
        assert cfg.metrics and cfg.spans and cfg.decisions

    def test_all_off_rejected(self):
        with pytest.raises(ValueError, match="enables nothing"):
            ObservabilityConfig(metrics=False, spans=False, decisions=False)

    def test_partial_layers(self):
        s = ObsSession(ObservabilityConfig(spans=False, decisions=False))
        assert s.metrics_enabled and not s.spans_enabled
        assert not s.decisions_enabled


class TestObsSession:
    def test_plan_record_claims_staged_probs(self):
        s = ObsSession()
        plan = [FakeVariant(2, "big"), None, FakeVariant(0, "small")]
        s.stage_probs(3, 10, np.array([0.9, 0.1, 0.4]))
        s.record_plan(10, 3, plan)
        (rec,) = s.records
        assert rec["kind"] == "plan" and rec["t"] == 10 and rec["fid"] == 3
        assert rec["levels"] == [2, None, 0]
        assert rec["variants"] == ["big", None, "small"]
        assert rec["probs"] == pytest.approx([0.9, 0.1, 0.4])
        assert s._staged_probs is None  # consumed

    def test_stale_staged_probs_not_claimed(self):
        s = ObsSession()
        s.stage_probs(3, 10, [0.5])
        s.record_plan(11, 3, [])  # different minute: snapshot must not attach
        assert "probs" not in s.records[0]

    def test_record_cold_and_downgrade(self):
        s = ObsSession()
        s.record_cold(5, 1, "GPT-Large", 2, None)
        s.record_downgrade(6, 1, "GPT-Large", "GPT-Medium",
                           candidates=[{"fid": 1}], forced=False)
        s.record_downgrade(7, 1, "GPT-Medium", None, forced=True)
        cold, dg, drop = s.records
        assert cold["last_arrival"] is None and cold["count"] == 2
        assert dg["candidates"] == [{"fid": 1}] and not dg["forced"]
        assert drop["to"] is None and drop["forced"]
        assert "candidates" not in drop

    def test_record_peak_maps_inf_to_none(self):
        s = ObsSession()
        s.record_peak(0, 100.0, math.inf, math.inf)
        rec = s.records[0]
        assert rec["demand_mb"] == 100.0
        assert rec["prior_mb"] is None and rec["target_mb"] is None

    def test_merge_accumulates_and_drops_records(self):
        a, b = ObsSession(), ObsSession()
        a.metrics.counter("hits").inc(1.0)
        b.metrics.counter("hits").inc(2.0)
        b.spans.add("estimate", 0.5)
        b.record_cold(0, 0, "v", 1, None)
        a.merge(b)
        assert a.metrics.counter("hits").value() == 3.0
        assert a.spans.seconds("estimate") == pytest.approx(0.5)
        assert a.n_runs == 2
        assert a.records == []  # per-run artifacts are not concatenated

    def test_picklable(self):
        s = ObsSession()
        s.metrics.counter("hits").inc(3.0, function=1)
        s.spans.add("estimate", 0.1)
        s.record_cold(0, 0, "v", 1, None)
        clone = pickle.loads(pickle.dumps(s))
        assert clone.enabled and clone.metrics_enabled
        assert clone.metrics.as_flat_dict() == s.metrics.as_flat_dict()
        assert clone.records == s.records
        assert clone.n_runs == 1


class TestNullSession:
    def test_all_flags_false(self):
        assert not NULL_OBS.enabled
        assert not NULL_OBS.metrics_enabled
        assert not NULL_OBS.spans_enabled
        assert not NULL_OBS.decisions_enabled

    def test_record_methods_are_noops(self):
        NULL_OBS.stage_probs(0, 0, [0.5])
        NULL_OBS.record_plan(0, 0, [])
        NULL_OBS.record_cold(0, 0, "v", 1, None)
        NULL_OBS.record_peak(0, 1.0, 2.0, 3.0)
        NULL_OBS.record_downgrade(0, 0, "a", "b")
        assert NULL_OBS.records == ()

    def test_nothing_allocated(self):
        # The shared singleton carries no registry/timer and cannot be
        # accidentally accumulated into.
        assert NULL_OBS.metrics is None
        assert NULL_OBS.spans is None
        with pytest.raises(AttributeError):
            NULL_OBS.records.append({"kind": "oops"})  # type: ignore[attr-defined]


def one_function_trace(counts):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


class TestEngineDisabledPath:
    """SimulationConfig.observe=None (default) must allocate nothing."""

    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_unobserved_run_has_no_session(self, gpt, engine):
        cfg = SimulationConfig()
        r = Simulation(one_function_trace([1, 0, 1]), {0: gpt},
                       OpenWhiskPolicy(), cfg).run(engine=engine)
        assert r.obs is None
        assert r.flat_metrics() == {}

    def test_unobserved_policy_keeps_null_obs(self, small_trace, assignment):
        policy = PulsePolicy()
        Simulation(small_trace, assignment, policy, SimulationConfig()).run()
        assert policy.obs is NULL_OBS
        assert policy._fopt.obs is NULL_OBS
        assert policy._gopt.obs is NULL_OBS
        assert NULL_OBS.records == ()  # nothing leaked onto the singleton

    def test_observe_bool_normalization(self):
        assert SimulationConfig(observe=True).observe == ObservabilityConfig()
        assert SimulationConfig(observe=False).observe is None
        assert SimulationConfig().observe is None
        cfg = ObservabilityConfig(decisions=False)
        assert SimulationConfig(observe=cfg).observe is cfg
        with pytest.raises(TypeError):
            SimulationConfig(observe="yes")  # type: ignore[arg-type]


class TestEngineObservedPath:
    @pytest.mark.parametrize("engine", ["reference", "fast"])
    def test_observed_run_populates_session(self, small_trace, assignment, engine):
        cfg = SimulationConfig(observe=True)
        r = Simulation(
            small_trace, assignment, PulsePolicy(), cfg
        ).run(engine=engine)
        s = r.obs
        assert s is not None and s.enabled
        kinds = {rec["kind"] for rec in s.records}
        assert {"plan", "cold"} <= kinds
        flat = r.flat_metrics()
        assert flat["invocations_total{function=0}"] > 0
        assert flat["cold_starts_total{function=0}"] >= 0
        assert sum(
            v for k, v in flat.items() if k.startswith("invocations_total")
        ) == r.n_invocations
        assert "engine-total" in s.spans.phases
        for phase in ("estimate", "band-mapping", "peak-detect",
                      "downgrade-select", "pool-reconcile"):
            assert s.spans.count(phase) > 0, phase

    def test_warm_cold_counters_match_headline(self, small_trace, assignment):
        cfg = SimulationConfig(observe=True)
        r = Simulation(small_trace, assignment, OpenWhiskPolicy(), cfg).run()
        flat = r.flat_metrics()
        cold = sum(v for k, v in flat.items() if k.startswith("cold_starts_total"))
        assert cold == r.n_cold
        assert flat["warm_starts_total"] == r.n_warm

    def test_metrics_only_layer(self, small_trace, assignment):
        cfg = SimulationConfig(
            observe=ObservabilityConfig(spans=False, decisions=False)
        )
        r = Simulation(small_trace, assignment, PulsePolicy(), cfg).run()
        assert r.obs.records == []
        assert len(r.obs.spans) == 0
        assert r.flat_metrics()
