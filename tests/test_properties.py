"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.interarrival import InterArrivalEstimator
from repro.core.priority import PriorityStructure, normalize
from repro.core.thresholds import MonotoneScheme, TechniqueT1, TechniqueT2
from repro.core.peak import PeakDetector
from repro.models.zoo import default_zoo
from repro.runtime.costmodel import CostModel
from repro.runtime.schedule import KeepAliveSchedule
from repro.sota.icebreaker import fft_extrapolate

ZOO = default_zoo()
GPT = ZOO.family("GPT")

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
variant_counts = st.integers(min_value=1, max_value=6)


class TestThresholdProperties:
    @given(p=probabilities, n=variant_counts)
    def test_t1_level_always_valid(self, p, n):
        level = TechniqueT1().select_level(p, n)
        assert 0 <= level < n

    @given(p=probabilities, n=variant_counts)
    def test_t2_level_always_valid(self, p, n):
        level = TechniqueT2().select_level(p, n)
        assert 0 <= level < n

    @given(
        ps=st.lists(probabilities, min_size=2, max_size=20),
        n=variant_counts,
    )
    def test_t1_monotone(self, ps, n):
        scheme = TechniqueT1()
        ordered = sorted(ps)
        levels = [scheme.select_level(p, n) for p in ordered]
        assert levels == sorted(levels)

    @given(
        cuts=st.lists(
            st.floats(min_value=0.01, max_value=0.99), min_size=1, max_size=5, unique=True
        ),
        p=probabilities,
        n=variant_counts,
    )
    def test_monotone_scheme_valid_for_any_cuts(self, cuts, p, n):
        scheme = MonotoneScheme(sorted(cuts))
        level = scheme.select_level(p, n)
        assert 0 <= level < n


class TestNormalizeProperties:
    @given(
        x=arrays(
            np.int64,
            st.integers(min_value=1, max_value=30),
            elements=st.integers(min_value=0, max_value=10_000),
        )
    )
    def test_output_in_unit_interval(self, x):
        out = normalize(x)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)

    @given(
        x=arrays(
            np.int64,
            st.integers(min_value=2, max_value=30),
            elements=st.integers(min_value=0, max_value=10_000),
        )
    )
    def test_order_preserved(self, x):
        out = normalize(x)
        order_in = np.argsort(x, kind="stable")
        assert np.all(np.diff(out[order_in]) >= -1e-12)

    @given(
        x=arrays(
            np.int64,
            st.integers(min_value=2, max_value=30),
            elements=st.integers(min_value=0, max_value=10_000),
        )
    )
    def test_extremes_hit_bounds_when_distinct(self, x):
        out = normalize(x)
        if x.max() != x.min():
            assert out.max() == pytest.approx(1.0)
            assert out.min() == pytest.approx(0.0)


class TestEstimatorProperties:
    @given(
        gaps=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=80),
        mode=st.sampled_from(["exact", "survival", "cumulative", "hazard"]),
    )
    @settings(max_examples=60)
    def test_probabilities_always_in_unit_interval(self, gaps, mode):
        est = InterArrivalEstimator(1, window=10, mode=mode)
        t = 0
        est.observe(0, 0)
        for g in gaps:
            t += g
            est.observe(0, t)
        p = est.probabilities(0, t)
        assert p.shape == (10,)
        assert np.all(p >= 0.0) and np.all(p <= 1.0)

    @given(
        gaps=st.lists(st.integers(min_value=1, max_value=40), min_size=1, max_size=80)
    )
    @settings(max_examples=60)
    def test_exact_window_mass_at_most_one(self, gaps):
        est = InterArrivalEstimator(1, window=10, mode="exact")
        t = 0
        est.observe(0, 0)
        for g in gaps:
            t += g
            est.observe(0, t)
        assert est.probabilities(0, t).sum() <= 1.0 + 1e-9

    @given(
        gaps=st.lists(st.integers(min_value=1, max_value=12), min_size=2, max_size=60)
    )
    @settings(max_examples=60)
    def test_survival_non_increasing(self, gaps):
        est = InterArrivalEstimator(1, window=10, mode="survival")
        t = 0
        est.observe(0, 0)
        for g in gaps:
            t += g
            est.observe(0, t)
        p = est.probabilities(0, t)
        assert np.all(np.diff(p) <= 1e-12)


class TestScheduleProperties:
    @given(
        levels=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=10),
        n_downgrades=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=60)
    def test_downgrades_never_increase_memory(self, levels, n_downgrades):
        sched = KeepAliveSchedule(1, keep_alive_window=10)
        plan = [GPT.variant(lv) for lv in levels]
        sched.set_plan(0, 0, plan)
        for minute in range(1, len(levels) + 1):
            before = sched.memory_at(minute)
            for _ in range(n_downgrades):
                sched.downgrade(0, minute, GPT)
                after = sched.memory_at(minute)
                assert after <= before + 1e-9
                before = after

    @given(
        levels=st.lists(st.integers(min_value=0, max_value=2), min_size=1, max_size=10)
    )
    @settings(max_examples=60)
    def test_downgrade_without_drop_preserves_aliveness(self, levels):
        sched = KeepAliveSchedule(1, keep_alive_window=10)
        sched.set_plan(0, 0, [GPT.variant(lv) for lv in levels])
        for _ in range(5):
            sched.downgrade(0, 1, GPT, allow_drop=False)
        for minute in range(1, len(levels) + 1):
            assert sched.alive_variant(0, minute) is not None


class TestCostModelProperties:
    @given(
        series=arrays(
            np.float64,
            st.integers(min_value=1, max_value=50),
            elements=st.floats(min_value=0.0, max_value=1e6),
        ),
        price=st.floats(min_value=1e-9, max_value=1.0),
    )
    def test_series_cost_is_additive(self, series, price):
        cm = CostModel(usd_per_mb_minute=price)
        half = len(series) // 2
        total = cm.series_cost(series)
        split = cm.series_cost(series[:half]) + cm.series_cost(series[half:])
        assert total == pytest.approx(split, rel=1e-9, abs=1e-12)


class TestPeakDetectorProperties:
    @given(
        memories=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100
        ),
        threshold=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=60)
    def test_flatten_target_never_flags_itself(self, memories, threshold):
        d = PeakDetector(memory_threshold=threshold)
        for m in memories:
            target = d.flatten_target()
            if np.isfinite(target):
                assert not d.is_peak(target)
            d.observe(m)

    @given(
        memories=st.lists(
            st.floats(min_value=1.0, max_value=1e6), min_size=2, max_size=60
        )
    )
    @settings(max_examples=60)
    def test_prior_is_positive_once_activity_seen(self, memories):
        d = PeakDetector()
        for m in memories:
            d.observe(m)
        assert d.prior_memory() > 0


class TestFftProperties:
    @given(
        period=st.integers(min_value=2, max_value=16),
        reps=st.integers(min_value=4, max_value=12),
    )
    @settings(max_examples=40)
    def test_extrapolation_bounded_for_binary_signals(self, period, reps):
        x = np.zeros(period * reps)
        x[::period] = 1.0
        pred = fft_extrapolate(x, 10, top_k=8)
        assert np.all(np.isfinite(pred))
        assert np.all(np.abs(pred) <= 2.0)
