"""Public API surface tests: everything __all__ promises must exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.faults",
    "repro.models",
    "repro.traces",
    "repro.runtime",
    "repro.baselines",
    "repro.sota",
    "repro.milp",
    "repro.experiments",
    "repro.utils",
]


class TestAllExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_members_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), f"{package} has no __all__"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_main_module_importable(self):
        # `python -m repro` resolves through repro.__main__.
        spec = importlib.util.find_spec("repro.__main__")
        assert spec is not None


class TestConvenienceImports:
    def test_quickstart_imports(self):
        # The exact imports the README's quickstart uses.
        from repro import (  # noqa: F401
            PulseConfig,
            PulsePolicy,
            Simulation,
            SimulationConfig,
            SyntheticTraceConfig,
            Trace,
            default_zoo,
            generate_trace,
        )
        from repro.baselines import OpenWhiskPolicy  # noqa: F401
        from repro.experiments.assignments import sample_assignment  # noqa: F401
        from repro import make_policy, simulate  # noqa: F401

    def test_policy_registry_is_complete(self):
        from repro.api import list_policies, make_policy

        for name in list_policies():
            policy = make_policy(name)
            assert policy.name, name
