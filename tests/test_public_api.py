"""Public API surface tests: everything __all__ promises must exist."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.api",
    "repro.core",
    "repro.faults",
    "repro.models",
    "repro.traces",
    "repro.runtime",
    "repro.baselines",
    "repro.sota",
    "repro.milp",
    "repro.experiments",
    "repro.utils",
    "repro.serve",
]


class TestAllExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_members_resolve(self, package):
        mod = importlib.import_module(package)
        assert hasattr(mod, "__all__"), f"{package} has no __all__"
        for name in mod.__all__:
            assert hasattr(mod, name), f"{package}.{name} missing"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_main_module_importable(self):
        # `python -m repro` resolves through repro.__main__.
        spec = importlib.util.find_spec("repro.__main__")
        assert spec is not None


class TestConvenienceImports:
    def test_quickstart_imports(self):
        # The exact imports the README's quickstart uses.
        from repro import (  # noqa: F401
            PulseConfig,
            PulsePolicy,
            Simulation,
            SimulationConfig,
            SyntheticTraceConfig,
            Trace,
            default_zoo,
            generate_trace,
        )
        from repro.baselines import OpenWhiskPolicy  # noqa: F401
        from repro.experiments.assignments import sample_assignment  # noqa: F401
        from repro import make_policy, simulate  # noqa: F401

    def test_policy_registry_is_complete(self):
        from repro.api import list_policies, make_policy

        for name in list_policies():
            policy = make_policy(name)
            assert policy.name, name


class TestServeSurface:
    def test_serve_exports_are_pinned(self):
        # The control-plane surface is stable API: additions are fine,
        # but these names must keep resolving.
        import repro.serve as serve

        assert set(serve.__all__) >= {
            "AdvanceResult",
            "ControlSession",
            "TraceMeta",
            "open_session",
        }

    def test_facade_signatures_are_keyword_only(self):
        # RPR007's contract, checked at runtime too: every public
        # facade callable takes at most one positional argument.
        import inspect

        import repro.api as api
        import repro.serve as serve
        from repro.serve import app

        for mod in (api, serve, app):
            for name in getattr(mod, "__all__", []):
                obj = getattr(mod, name)
                if not inspect.isfunction(obj):
                    continue
                params = inspect.signature(obj).parameters.values()
                positional = [
                    p.name for p in params
                    if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
                ]
                assert len(positional) <= 1, (
                    f"{mod.__name__}.{name} has positional params "
                    f"{positional[1:]}"
                )
