"""Tests for the engine's memory-capacity pressure valve."""

import numpy as np
import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.experiments.capacity import memory_capacity_study
from repro.experiments.runner import ExperimentConfig
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import FunctionSpec, Trace


def make_trace(counts):
    counts = np.asarray(counts, dtype=np.int64)
    specs = tuple(FunctionSpec(i, f"f{i}") for i in range(counts.shape[0]))
    return Trace(counts=counts, functions=specs)


class TestCapacityValve:
    def test_memory_never_exceeds_capacity(self, gpt, bert):
        counts = np.zeros((2, 40), dtype=np.int64)
        counts[:, [0, 5, 10]] = 1
        trace = make_trace(counts)
        cap = gpt.highest.memory_mb + 10.0  # fits one big container only
        cfg = SimulationConfig(memory_capacity_mb=cap)
        r = Simulation(trace, {0: gpt, 1: bert}, OpenWhiskPolicy(), cfg).run()
        assert r.memory_series_mb.max() <= cap + 1e-9
        assert r.n_forced_downgrades > 0

    def test_uncapped_has_no_forced_downgrades(self, gpt, bert):
        counts = np.zeros((2, 40), dtype=np.int64)
        counts[:, [0, 5]] = 1
        trace = make_trace(counts)
        r = Simulation(trace, {0: gpt, 1: bert}, OpenWhiskPolicy()).run()
        assert r.n_forced_downgrades == 0

    def test_generous_cap_is_inert(self, gpt, bert):
        counts = np.zeros((2, 40), dtype=np.int64)
        counts[:, [0, 5]] = 1
        trace = make_trace(counts)
        cfg = SimulationConfig(memory_capacity_mb=1e9)
        r = Simulation(trace, {0: gpt, 1: bert}, OpenWhiskPolicy(), cfg).run()
        assert r.n_forced_downgrades == 0

    def test_forced_downgrades_cause_cold_starts(self, gpt):
        # One big-model function re-invoking inside the window: with a cap
        # below its footprint, the keep-alive is shed and the next
        # invocation is cold.
        counts = np.zeros((1, 20), dtype=np.int64)
        counts[0, [0, 5]] = 1
        trace = make_trace(counts)
        cfg = SimulationConfig(memory_capacity_mb=gpt.lowest.memory_mb - 1.0)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        assert r.n_cold == 2

    def test_capacity_seed_determinism(self, gpt, bert):
        counts = np.zeros((2, 60), dtype=np.int64)
        counts[:, ::4] = 1
        trace = make_trace(counts)
        cfg = SimulationConfig(memory_capacity_mb=2000.0, capacity_seed=3)
        a = Simulation(trace, {0: gpt, 1: bert}, OpenWhiskPolicy(), cfg).run()
        b = Simulation(trace, {0: gpt, 1: bert}, OpenWhiskPolicy(), cfg).run()
        assert a.n_forced_downgrades == b.n_forced_downgrades
        assert a.total_service_time_s == b.total_service_time_s

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(memory_capacity_mb=0.0)


class TestCapacityStudy:
    def test_pulse_preempts_forced_downgrades(self, small_trace):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=720, seed=6)
        points = memory_capacity_study((6000.0,), cfg)
        p = points[0]
        assert p.openwhisk_forced_downgrades > p.pulse_forced_downgrades

    def test_monotone_in_capacity(self):
        cfg = ExperimentConfig(n_runs=1, horizon_minutes=720, seed=6)
        points = memory_capacity_study((5000.0, 20000.0), cfg)
        assert (
            points[0].openwhisk_forced_downgrades
            >= points[1].openwhisk_forced_downgrades
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            memory_capacity_study(())
        with pytest.raises(ValueError):
            memory_capacity_study((-5.0,), ExperimentConfig(n_runs=1, horizon_minutes=60))
