"""Checkpoint/resume: bit-identical round-trips on both engines.

The contract under test (see :mod:`repro.runtime.checkpoint`): resuming
an interrupted run from any snapshot produces exactly the metrics the
uninterrupted run produced — same summary, same memory series bytes,
same observability counters — on both engines, with and without fault
injection.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import simulate
from repro.models.zoo import default_zoo
from repro.runtime.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointConfig,
    SimulationState,
)
from repro.runtime.simulator import SimulationConfig
from repro.traces.schema import FunctionSpec, Trace

ZOO = default_zoo()
FAMILIES = list(ZOO)

ENGINES = ("reference", "fast")
FAULT_SPECS = (None, "spawn=0.2,slow=0.1,seed=7")


def _assignment(trace):
    return {f: FAMILIES[f % len(FAMILIES)] for f in range(trace.n_functions)}


def _comparable(result):
    """Everything a resumed run must reproduce byte-for-byte."""
    d = result.summary()
    d.pop("wall_clock_s", None)
    for key, series in (
        ("memory_series", result.memory_series_mb),
        ("ideal_series", result.ideal_memory_series_mb),
    ):
        d[key] = None if series is None else series.tobytes()
    if result.obs is not None and result.obs.metrics_enabled:
        d["metrics"] = result.obs.metrics.as_flat_dict()
    return d


def _trace_from_matrix(matrix):
    counts = np.asarray(matrix, dtype=np.int64)
    specs = tuple(FunctionSpec(i, f"f{i}") for i in range(counts.shape[0]))
    return Trace(counts=counts, functions=specs)


small_traces = st.integers(min_value=1, max_value=3).flatmap(
    lambda n_fn: st.lists(
        st.lists(st.integers(min_value=0, max_value=3),
                 min_size=40, max_size=40),
        min_size=n_fn,
        max_size=n_fn,
    )
)


class TestRoundTrip:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("faults", FAULT_SPECS)
    def test_resume_matches_uninterrupted_run(
        self, tiny_trace, tiny_assignment, engine, faults
    ):
        states: list[SimulationState] = []
        cp = CheckpointConfig(every_minutes=13, on_snapshot=states.append)
        full = simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse",
            engine=engine, faults=faults, checkpoint=cp,
        )
        assert full.n_checkpoints == len(states) > 1
        for state in states:
            resumed = simulate(
                tiny_trace, assignment=tiny_assignment, policy="pulse",
                engine=engine, faults=faults,
                checkpoint=CheckpointConfig(
                    every_minutes=13, on_snapshot=lambda s: None
                ),
                resume_from=state,
            )
            assert _comparable(resumed) == _comparable(full)
            assert resumed.n_checkpoints == full.n_checkpoints

    def test_checkpointing_does_not_perturb_metrics(
        self, tiny_trace, tiny_assignment
    ):
        plain = simulate(tiny_trace, assignment=tiny_assignment, policy="pulse", engine="fast")
        checked = simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse", engine="fast",
            checkpoint=CheckpointConfig(
                every_minutes=7, on_snapshot=lambda s: None
            ),
        )
        assert _comparable(plain) == _comparable(checked)

    def test_observed_resume_restores_counters(
        self, tiny_trace, tiny_assignment
    ):
        config = SimulationConfig(observe=True)
        states: list[SimulationState] = []
        cp = CheckpointConfig(every_minutes=20, on_snapshot=states.append)
        full = simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse",
            config=config,
            engine="reference", checkpoint=cp,
        )
        resumed = simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse",
            config=config,
            engine="reference",
            checkpoint=CheckpointConfig(
                every_minutes=20, on_snapshot=lambda s: None
            ),
            resume_from=states[-1],
        )
        assert _comparable(resumed) == _comparable(full)

    @given(matrix=small_traces, every=st.integers(min_value=3, max_value=17),
           engine_idx=st.integers(min_value=0, max_value=1))
    @settings(max_examples=15, deadline=None)
    def test_random_traces_round_trip(self, matrix, every, engine_idx):
        trace = _trace_from_matrix(matrix)
        assignment = _assignment(trace)
        engine = ENGINES[engine_idx]
        states: list[SimulationState] = []
        cp = CheckpointConfig(every_minutes=every,
                              on_snapshot=states.append)
        full = simulate(trace, assignment=assignment, policy="openwhisk",
                        engine=engine, checkpoint=cp)
        if not states:  # horizon shorter than the cadence: nothing to do
            return
        resumed = simulate(
            trace, assignment=assignment, policy="openwhisk", engine=engine,
            checkpoint=CheckpointConfig(
                every_minutes=every, on_snapshot=lambda s: None
            ),
            resume_from=states[len(states) // 2],
        )
        assert _comparable(resumed) == _comparable(full)


class TestStatePersistence:
    def test_save_load_round_trip(self, tiny_trace, tiny_assignment, tmp_path):
        path = tmp_path / "run.ckpt"
        full = simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse", engine="fast",
            checkpoint=CheckpointConfig(path=path, every_minutes=25),
        )
        assert full.n_checkpoints >= 1
        state = SimulationState.load(path)
        assert state.engine == "fast"
        assert state.schema_version == CHECKPOINT_SCHEMA_VERSION
        resumed = simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse", engine="fast",
            checkpoint=CheckpointConfig(path=tmp_path / "resumed.ckpt",
                                        every_minutes=25),
            resume_from=path,  # the facade loads paths itself
        )
        assert _comparable(resumed) == _comparable(full)

    def test_load_rejects_foreign_payload(self, tmp_path):
        path = tmp_path / "bogus.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(Exception):
            SimulationState.load(path)

    def test_version_gate(self, tiny_trace, tiny_assignment):
        states: list[SimulationState] = []
        simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse", engine="fast",
            checkpoint=CheckpointConfig(every_minutes=30,
                                        on_snapshot=states.append),
        )
        stale = SimulationState(
            engine=states[0].engine,
            next_minute=states[0].next_minute,
            cursor=states[0].cursor,
            payload=states[0].payload,
            schema_version=CHECKPOINT_SCHEMA_VERSION + 1,
        )
        with pytest.raises(ValueError, match="schema"):
            stale.restore()


class TestGuards:
    def test_engine_mismatch_refused(self, tiny_trace, tiny_assignment):
        states: list[SimulationState] = []
        simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse", engine="fast",
            checkpoint=CheckpointConfig(every_minutes=30,
                                        on_snapshot=states.append),
        )
        with pytest.raises(ValueError, match="engine"):
            simulate(
                tiny_trace, assignment=tiny_assignment, policy="pulse", engine="reference",
                resume_from=states[0],
            )

    def test_config_requires_sink(self):
        with pytest.raises(ValueError):
            CheckpointConfig()

    def test_config_rejects_bad_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointConfig(path=tmp_path / "x.ckpt", every_minutes=0)

    def test_run_rejects_non_config(self, tiny_trace, tiny_assignment):
        with pytest.raises(TypeError):
            simulate(
                tiny_trace, assignment=tiny_assignment, policy="pulse", engine="fast",
                checkpoint=42,
            )
