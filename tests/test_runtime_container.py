"""Tests for repro.runtime.container — lifecycle and pool statistics."""

import pytest

from repro.runtime.container import ContainerPool, ContainerState


class TestReconcile:
    def test_creates_on_demand(self, gpt):
        pool = ContainerPool()
        c = pool.reconcile(0, gpt.highest, 0)
        assert c is not None
        assert c.state is ContainerState.WARM
        assert pool.stats.prewarms == 1

    def test_noop_when_variant_matches(self, gpt):
        pool = ContainerPool()
        c1 = pool.reconcile(0, gpt.highest, 0)
        c2 = pool.reconcile(0, gpt.highest, 1)
        assert c1 is c2
        assert pool.stats.containers_created == 1

    def test_variant_switch_evicts_and_prewarms(self, gpt):
        pool = ContainerPool()
        c1 = pool.reconcile(0, gpt.highest, 0)
        c2 = pool.reconcile(0, gpt.lowest, 1)
        assert c1.state is ContainerState.EVICTED
        assert c1.evicted_minute == 1
        assert c2.variant == gpt.lowest
        assert pool.stats.evictions == 1
        assert pool.stats.prewarms == 2

    def test_none_desired_evicts(self, gpt):
        pool = ContainerPool()
        pool.reconcile(0, gpt.highest, 0)
        assert pool.reconcile(0, None, 3) is None
        assert pool.n_live == 0
        assert pool.stats.evictions == 1

    def test_time_must_not_go_backwards(self, gpt):
        pool = ContainerPool()
        pool.reconcile(0, gpt.highest, 5)
        with pytest.raises(ValueError, match="backwards"):
            pool.reconcile(0, gpt.highest, 4)


class TestColdStart:
    def test_cold_start_counts(self, gpt):
        pool = ContainerPool()
        c = pool.cold_start(0, gpt.highest, 2)
        assert pool.stats.cold_creates == 1
        assert c.created_minute == 2

    def test_cold_start_with_live_container_is_error(self, gpt):
        pool = ContainerPool()
        pool.reconcile(0, gpt.highest, 0)
        with pytest.raises(RuntimeError, match="live"):
            pool.cold_start(0, gpt.highest, 1)

    def test_double_evict_is_error(self, gpt):
        pool = ContainerPool()
        c = pool.reconcile(0, gpt.highest, 0)
        pool.reconcile(0, None, 1)
        with pytest.raises(RuntimeError, match="already evicted"):
            c.evict(2)


class TestServingAndTicks:
    def test_record_served(self, gpt):
        pool = ContainerPool()
        pool.cold_start(0, gpt.highest, 0)
        pool.record_served(0, 3)
        assert pool.live_container(0).served_invocations == 3

    def test_record_served_without_container(self):
        pool = ContainerPool()
        with pytest.raises(RuntimeError, match="no live container"):
            pool.record_served(0, 1)

    def test_tick_all_accumulates_memory_minutes(self, gpt, bert):
        pool = ContainerPool()
        pool.reconcile(0, gpt.highest, 0)
        pool.reconcile(1, bert.lowest, 0)
        pool.tick_all()
        pool.tick_all()
        expected = 2 * (gpt.highest.memory_mb + bert.lowest.memory_mb)
        assert pool.stats.warm_mb_minutes == pytest.approx(expected)

    def test_warm_minutes_by_level(self, gpt):
        pool = ContainerPool()
        pool.reconcile(0, gpt.highest, 0)
        pool.tick_all()
        pool.reconcile(0, gpt.lowest, 1)
        pool.tick_all()
        assert pool.stats.warm_minutes_by_level == {
            gpt.highest.level: 1,
            gpt.lowest.level: 1,
        }

    def test_lifetime_minutes(self, gpt):
        pool = ContainerPool()
        c = pool.reconcile(0, gpt.highest, 10)
        pool.reconcile(0, None, 14)
        assert c.lifetime_minutes == 4

    def test_history_keeps_evicted(self, gpt):
        pool = ContainerPool()
        pool.reconcile(0, gpt.highest, 0)
        pool.reconcile(0, gpt.lowest, 1)
        assert len(pool.history()) == 2
