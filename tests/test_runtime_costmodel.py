"""Tests for repro.runtime.costmodel."""

import numpy as np
import pytest

from repro.runtime.costmodel import DEFAULT_USD_PER_MB_MINUTE, CostModel


class TestCostModel:
    def test_minute_cost_linear(self):
        cm = CostModel(usd_per_mb_minute=2.0)
        assert cm.minute_cost(3.0) == pytest.approx(6.0)
        assert cm.minute_cost(0.0) == 0.0

    def test_rejects_negative_memory(self):
        with pytest.raises(ValueError):
            CostModel().minute_cost(-1.0)

    def test_rejects_non_positive_price(self):
        with pytest.raises(ValueError):
            CostModel(usd_per_mb_minute=0.0)

    def test_series_cost_equals_sum_of_minutes(self):
        cm = CostModel(usd_per_mb_minute=0.5)
        series = np.array([1.0, 2.0, 3.0])
        assert cm.series_cost(series) == pytest.approx(
            sum(cm.minute_cost(m) for m in series)
        )

    def test_series_rejects_negative(self):
        with pytest.raises(ValueError):
            CostModel().series_cost(np.array([1.0, -2.0]))

    def test_cost_series_shape(self):
        cm = CostModel()
        out = cm.cost_series(np.ones(5))
        assert out.shape == (5,)
        np.testing.assert_allclose(out, DEFAULT_USD_PER_MB_MINUTE)

    def test_cents_per_hour(self):
        cm = CostModel(usd_per_mb_minute=1e-6)
        # 1000 MB * 1e-6 $/MB-min * 60 min * 100 cents = 6 cents/hour
        assert cm.cents_per_hour(1000.0) == pytest.approx(6.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CostModel().usd_per_mb_minute = 1.0
