"""Tests for repro.runtime.events and engine event recording."""

import numpy as np
import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.core.pulse import PulsePolicy
from repro.runtime.events import Event, EventKind, EventLog
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import FunctionSpec, Trace


def one_function_trace(counts):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.emit(0, EventKind.COLD_START, 1, "GPT-Large", 1)
        log.emit(0, EventKind.MEMORY_COMMIT, value=500.0)
        log.emit(3, EventKind.WARM_START, 1, "GPT-Large", 2)
        assert len(log) == 3
        assert log.count(EventKind.COLD_START) == 1
        assert len(log.for_function(1)) == 2
        assert len(log.between(0, 1)) == 2
        assert log.cold_start_minutes(1) == [0]

    def test_time_order_enforced(self):
        log = EventLog()
        log.emit(5, EventKind.MEMORY_COMMIT)
        with pytest.raises(ValueError, match="time order"):
            log.emit(4, EventKind.MEMORY_COMMIT)

    def test_negative_minute_rejected(self):
        with pytest.raises(ValueError):
            Event(-1, EventKind.COLD_START)

    def test_iteration_and_indexing(self):
        log = EventLog()
        log.emit(0, EventKind.PREWARM, 0, "BERT-Small")
        assert list(log)[0] is log[0]

    def test_empty_log_filters(self):
        log = EventLog()
        assert len(log) == 0 and list(log) == []
        assert log.of_kind(EventKind.COLD_START) == []
        assert log.of_kinds(EventKind.COLD_START, EventKind.WARM_START) == []
        assert log.for_function(0) == []
        assert log.between(0, 100) == []
        assert log.count(EventKind.DOWNGRADE) == 0
        assert log.cold_start_minutes(0) == []

    def test_unknown_function_id(self):
        log = EventLog()
        log.emit(0, EventKind.COLD_START, 1, "v", 1)
        assert log.for_function(99) == []
        assert log.cold_start_minutes(99) == []

    def test_of_kinds_multi_kind_filter(self):
        log = EventLog()
        log.emit(0, EventKind.COLD_START, 0, "v", 1)
        log.emit(1, EventKind.DOWNGRADE, 0, None, 0.0)
        log.emit(1, EventKind.MEMORY_COMMIT, value=10.0)
        log.emit(2, EventKind.VARIANT_SWITCH, 0, "v2", 1.0)
        both = log.of_kinds(EventKind.DOWNGRADE, EventKind.VARIANT_SWITCH)
        assert [e.kind for e in both] == [
            EventKind.DOWNGRADE, EventKind.VARIANT_SWITCH,
        ]
        assert log.of_kinds() == []  # no kinds requested -> nothing
        assert log.of_kinds(EventKind.MEMORY_COMMIT) == log.of_kind(
            EventKind.MEMORY_COMMIT
        )


class TestEngineEventRecording:
    def test_disabled_by_default(self, gpt):
        r = Simulation(one_function_trace([1, 0]), {0: gpt}, OpenWhiskPolicy()).run()
        assert r.events is None

    def test_cold_and_warm_starts_recorded(self, gpt):
        trace = one_function_trace([2, 0, 1, 0])
        cfg = SimulationConfig(record_events=True)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        log = r.events
        assert log is not None
        assert log.count(EventKind.COLD_START) == r.n_cold == 1
        warm_served = sum(e.value for e in log.of_kind(EventKind.WARM_START))
        assert warm_served == r.n_warm == 2

    def test_memory_commits_match_series(self, gpt):
        trace = one_function_trace([1, 0, 0, 0])
        cfg = SimulationConfig(record_events=True)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        commits = [e.value for e in r.events.of_kind(EventKind.MEMORY_COMMIT)]
        np.testing.assert_allclose(commits, r.memory_series_mb)

    def test_prewarm_and_eviction_on_window_end(self, gpt):
        trace = one_function_trace([1] + [0] * 14)
        cfg = SimulationConfig(record_events=True)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        evictions = r.events.of_kind(EventKind.EVICTION)
        # The container comes down when the 10-minute window expires.
        assert evictions and evictions[0].minute == 11

    def test_variant_switch_emits_prewarm(self, small_trace, assignment):
        cfg = SimulationConfig(record_events=True)
        r = Simulation(small_trace, assignment, PulsePolicy(), cfg).run()
        # PULSE switches variants inside windows: pre-warms must appear.
        assert r.events.count(EventKind.PREWARM) > 0

    def test_events_imply_pool(self, gpt):
        trace = one_function_trace([1, 0])
        cfg = SimulationConfig(record_events=True, track_containers=False)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        assert r.events is not None
        assert r.pool_stats is not None  # pool forced on for event capture

    def test_policy_downgrades_recorded(self, small_trace, assignment):
        cfg = SimulationConfig(record_events=True)
        r = Simulation(small_trace, assignment, PulsePolicy(), cfg).run()
        downgrades = r.events.of_kind(EventKind.DOWNGRADE)
        assert downgrades  # PULSE flattens peaks on this trace
        assert all(e.value == 0.0 for e in downgrades)  # none forced
        # A downgrade-to is either a lower variant name or None (dropped).
        assert any(e.variant_name is not None for e in downgrades)

    def test_forced_downgrades_flagged(self, small_trace, assignment):
        cfg = SimulationConfig(
            record_events=True, memory_capacity_mb=4000.0, capacity_seed=11
        )
        r = Simulation(small_trace, assignment, PulsePolicy(), cfg).run()
        forced = [
            e for e in r.events.of_kind(EventKind.DOWNGRADE) if e.value == 1.0
        ]
        assert len(forced) == r.n_forced_downgrades > 0

    def test_variant_switch_events(self, small_trace, assignment):
        cfg = SimulationConfig(record_events=True)
        r = Simulation(small_trace, assignment, PulsePolicy(), cfg).run()
        switches = r.events.of_kind(EventKind.VARIANT_SWITCH)
        assert switches  # PULSE moves containers between variants
        for e in switches:
            assert e.variant_name is not None  # the variant switched to
            assert e.value >= 0.0  # the level it replaced
