"""Tests for repro.runtime.metrics."""

import numpy as np
import pytest

from repro.runtime.costmodel import CostModel
from repro.runtime.metrics import RunResult, aggregate_results, percent_improvement


def make_result(**kw):
    defaults = dict(
        policy_name="p",
        n_invocations=10,
        n_warm=8,
        n_cold=2,
        total_service_time_s=100.0,
        keepalive_cost_usd=5.0,
        mean_accuracy=80.0,
        policy_overhead_s=0.5,
        n_policy_decisions=50,
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestRunResult:
    def test_warm_fraction(self):
        assert make_result().warm_fraction == pytest.approx(0.8)

    def test_zero_invocations(self):
        r = make_result(n_invocations=0, n_warm=0, n_cold=0)
        assert r.warm_fraction == 0.0

    def test_warm_cold_consistency_enforced(self):
        with pytest.raises(ValueError):
            make_result(n_warm=5, n_cold=2, n_invocations=10)

    def test_overhead_per_decision(self):
        assert make_result().overhead_per_decision_s == pytest.approx(0.01)
        assert make_result(n_policy_decisions=0).overhead_per_decision_s == 0.0

    def test_overhead_over_service_time(self):
        assert make_result().overhead_over_service_time == pytest.approx(0.005)

    def test_summary_keys(self):
        s = make_result().summary()
        assert {"policy", "service_time_s", "keepalive_cost_usd",
                "accuracy_percent", "n_forced_downgrades",
                "wall_clock_s"} <= set(s)

    def test_summary_forced_downgrades_and_wall_clock(self):
        s = make_result(n_forced_downgrades=4, wall_clock_s=1.25).summary()
        assert s["n_forced_downgrades"] == 4.0
        assert s["wall_clock_s"] == 1.25

    def test_flat_metrics_empty_without_session(self):
        assert make_result().flat_metrics() == {}


class TestCostErrorSeries:
    def test_requires_series(self):
        with pytest.raises(ValueError, match="without series"):
            make_result().cost_error_series(CostModel())

    def test_error_values(self):
        r = make_result(
            memory_series_mb=np.array([100.0, 200.0, 0.0, 50.0]),
            ideal_memory_series_mb=np.array([100.0, 100.0, 0.0, 0.0]),
        )
        err = r.cost_error_series(CostModel())
        assert err[0] == pytest.approx(0.0)
        assert err[1] == pytest.approx(100.0)
        assert err[2] == pytest.approx(0.0)  # both zero
        assert err[3] == pytest.approx(200.0)  # waste with no ideal: capped

    def test_clipped_to_plot_range(self):
        r = make_result(
            memory_series_mb=np.array([1000.0]),
            ideal_memory_series_mb=np.array([1.0]),
        )
        assert r.cost_error_series(CostModel())[0] == 200.0


class TestAggregation:
    def test_aggregate_means(self):
        rs = [make_result(keepalive_cost_usd=c) for c in (1.0, 3.0)]
        agg = aggregate_results(rs)
        assert agg["keepalive_cost_usd"] == pytest.approx(2.0)
        assert agg["n_runs"] == 2.0

    def test_aggregate_includes_counts_and_wall_clock(self):
        rs = [
            make_result(n_warm=6, n_cold=4, n_forced_downgrades=2,
                        wall_clock_s=1.0),
            make_result(n_warm=8, n_cold=2, n_forced_downgrades=0,
                        wall_clock_s=3.0),
        ]
        agg = aggregate_results(rs)
        assert agg["n_warm"] == pytest.approx(7.0)
        assert agg["n_cold"] == pytest.approx(3.0)
        assert agg["n_forced_downgrades"] == pytest.approx(1.0)
        assert agg["wall_clock_s"] == pytest.approx(2.0)

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([])


class TestPercentImprovement:
    def test_lower_is_better(self):
        assert percent_improvement(100.0, 60.0, higher_is_better=False) == pytest.approx(40.0)
        assert percent_improvement(100.0, 120.0, higher_is_better=False) == pytest.approx(-20.0)

    def test_higher_is_better(self):
        assert percent_improvement(80.0, 79.2, higher_is_better=True) == pytest.approx(-1.0)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            percent_improvement(0.0, 1.0, higher_is_better=True)
