"""Differential tests: the minute-loop engine vs the closed-form
reference implementation of fixed keep-alive."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.openwhisk import FixedKeepAlivePolicy, OpenWhiskPolicy
from repro.models.zoo import default_zoo
from repro.runtime.replay import FixedPolicyReference
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import FunctionSpec, Trace
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace

ZOO = default_zoo()
FAMILIES = list(ZOO)


def trace_from_matrix(matrix) -> Trace:
    counts = np.asarray(matrix, dtype=np.int64)
    specs = tuple(FunctionSpec(i, f"f{i}") for i in range(counts.shape[0]))
    return Trace(counts=counts, functions=specs)


def assert_engines_agree(trace, level="highest", window=10):
    assignment = {f: FAMILIES[f % len(FAMILIES)] for f in range(trace.n_functions)}
    policy = (
        OpenWhiskPolicy() if level == "highest" else FixedKeepAlivePolicy("lowest")
    )
    cfg = SimulationConfig(keep_alive_window=window, track_containers=False)
    engine = Simulation(trace, assignment, policy, cfg).run()
    ref = FixedPolicyReference(keep_alive_window=window, level=level).run(
        trace, assignment
    )
    assert engine.n_cold == ref.n_cold
    assert engine.n_warm == ref.n_warm
    assert engine.total_service_time_s == pytest.approx(ref.total_service_time_s)
    assert engine.keepalive_cost_usd == pytest.approx(ref.keepalive_cost_usd)
    assert engine.mean_accuracy == pytest.approx(ref.mean_accuracy)


class TestDifferential:
    def test_simple_trace(self):
        assert_engines_agree(trace_from_matrix([[1, 0, 0, 2, 0, 0, 0, 0, 0, 0,
                                                 0, 0, 0, 0, 0, 1, 0, 0, 0, 0]]))

    def test_synthetic_trace_highest(self):
        trace = generate_trace(SyntheticTraceConfig(horizon_minutes=720, seed=21))
        assert_engines_agree(trace, level="highest")

    def test_synthetic_trace_lowest(self):
        trace = generate_trace(SyntheticTraceConfig(horizon_minutes=720, seed=22))
        assert_engines_agree(trace, level="lowest")

    @pytest.mark.parametrize("window", [1, 5, 10, 17])
    def test_across_windows(self, window):
        trace = generate_trace(SyntheticTraceConfig(horizon_minutes=400, seed=23))
        assert_engines_agree(trace, window=window)

    @given(
        matrix=st.integers(min_value=1, max_value=3).flatmap(
            lambda n: st.lists(
                st.lists(st.integers(min_value=0, max_value=2), min_size=25,
                         max_size=25),
                min_size=n,
                max_size=n,
            )
        ),
        window=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_agreement(self, matrix, window):
        assert_engines_agree(trace_from_matrix(matrix), window=window)

    def test_keepalive_clipped_at_horizon(self):
        # Arrival near the end: the window must not bill past the horizon.
        trace = trace_from_matrix([[0, 0, 0, 0, 0, 0, 0, 1, 0, 0]])
        assignment = {0: FAMILIES[0]}
        ref = FixedPolicyReference().run(trace, assignment)
        variant = FAMILIES[0].highest
        assert ref.keepalive_mb_minutes == pytest.approx(3 * variant.memory_mb)

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedPolicyReference(keep_alive_window=0)
        with pytest.raises(ValueError):
            FixedPolicyReference(level="median")
