"""Tests for repro.runtime.schedule — the keep-alive ledger."""

import pytest

from repro.runtime.schedule import KeepAliveSchedule


@pytest.fixture()
def sched():
    return KeepAliveSchedule(n_functions=3, keep_alive_window=10)


class TestPlans:
    def test_set_plan_covers_offsets(self, sched, gpt):
        plan = [gpt.highest] * 3 + [None] * 7
        sched.set_plan(0, 100, plan)
        assert sched.alive_variant(0, 101) == gpt.highest
        assert sched.alive_variant(0, 103) == gpt.highest
        assert sched.alive_variant(0, 104) is None
        assert sched.alive_variant(0, 100) is None  # plan starts at +1

    def test_plan_overwrites_previous(self, sched, gpt):
        sched.set_plan(0, 100, [gpt.highest] * 10)
        sched.set_plan(0, 103, [None] * 10)
        # minutes 104..113 cleared; 101..103 still from the first plan
        assert sched.alive_variant(0, 103) == gpt.highest
        assert sched.alive_variant(0, 107) is None

    def test_plan_too_long_rejected(self, sched, gpt):
        with pytest.raises(ValueError, match="exceeds"):
            sched.set_plan(0, 0, [gpt.highest] * 11)

    def test_short_plan_allowed(self, sched, gpt):
        sched.set_plan(0, 0, [gpt.lowest])
        assert sched.alive_variant(0, 1) == gpt.lowest

    def test_mark_alive_same_minute(self, sched, gpt):
        sched.mark_alive(1, 50, gpt.lowest)
        assert sched.alive_variant(1, 50) == gpt.lowest

    def test_bad_fid(self, sched, gpt):
        with pytest.raises(IndexError):
            sched.set_plan(3, 0, [gpt.highest])


class TestMemoryAccounting:
    def test_memory_at_sums_variants(self, sched, gpt, bert):
        sched.mark_alive(0, 5, gpt.highest)
        sched.mark_alive(1, 5, bert.lowest)
        expected = gpt.highest.memory_mb + bert.lowest.memory_mb
        assert sched.memory_at(5) == pytest.approx(expected)

    def test_empty_minute_is_zero(self, sched):
        assert sched.memory_at(0) == 0.0

    def test_alive_at(self, sched, gpt):
        sched.mark_alive(2, 7, gpt.lowest)
        assert sched.alive_at(7) == {2: gpt.lowest}


class TestDowngrade:
    def test_downgrade_steps_one_level(self, sched, gpt):
        sched.set_plan(0, 0, [gpt.highest] * 10)
        freed = sched.downgrade(0, 1, gpt)
        assert sched.alive_variant(0, 1).level == gpt.highest.level - 1
        assert freed == pytest.approx(
            gpt.highest.memory_mb - gpt.variant(gpt.highest.level - 1).memory_mb
        )

    def test_downgrade_applies_to_future_entries(self, sched, gpt):
        sched.set_plan(0, 0, [gpt.highest] * 10)
        sched.downgrade(0, 5, gpt)
        assert sched.alive_variant(0, 3).level == 2  # before from_minute
        assert sched.alive_variant(0, 9).level == 1

    def test_lowest_dropped_when_allowed(self, sched, gpt):
        sched.set_plan(0, 0, [gpt.lowest] * 10)
        freed = sched.downgrade(0, 1, gpt, allow_drop=True)
        assert sched.alive_variant(0, 1) is None
        assert freed == pytest.approx(gpt.lowest.memory_mb)

    def test_lowest_kept_when_drop_forbidden(self, sched, gpt):
        sched.set_plan(0, 0, [gpt.lowest] * 10)
        freed = sched.downgrade(0, 1, gpt, allow_drop=False)
        assert sched.alive_variant(0, 1) == gpt.lowest
        assert freed == 0.0

    def test_mixed_levels_downgraded_entrywise(self, sched, gpt):
        plan = [gpt.lowest, gpt.highest, gpt.variant(1)]
        sched.set_plan(0, 0, plan)
        sched.downgrade(0, 1, gpt, allow_drop=False)
        assert sched.alive_variant(0, 1) == gpt.lowest  # was lowest, kept
        assert sched.alive_variant(0, 2).level == 1
        assert sched.alive_variant(0, 3).level == 0

    def test_memory_never_increases(self, sched, gpt):
        sched.set_plan(0, 0, [gpt.highest] * 10)
        before = sched.memory_at(4)
        for _ in range(5):
            sched.downgrade(0, 4, gpt)
            after = sched.memory_at(4)
            assert after <= before
            before = after


class TestAdvance:
    def test_advance_drops_past(self, sched, gpt):
        sched.set_plan(0, 0, [gpt.highest] * 10)
        sched.advance(5)
        assert sched.alive_variant(0, 4) is None
        assert sched.alive_variant(0, 5) == gpt.highest
        assert sched.planned_minutes(0) == [5, 6, 7, 8, 9, 10]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            KeepAliveSchedule(0, 10)
        with pytest.raises(ValueError):
            KeepAliveSchedule(1, 0)
