"""Tests for repro.runtime.simulator — engine semantics."""

import numpy as np
import pytest

from repro.baselines.openwhisk import FixedKeepAlivePolicy, OpenWhiskPolicy
from repro.runtime.costmodel import CostModel
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.traces.schema import FunctionSpec, Trace


def one_function_trace(counts):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


class TestEngineSemantics:
    def test_first_invocation_is_cold(self, gpt):
        trace = one_function_trace([0, 1, 0, 0])
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        assert r.n_cold == 1
        assert r.n_warm == 0
        assert r.total_service_time_s == pytest.approx(
            gpt.highest.cold_service_time_s
        )

    def test_reinvocation_within_window_is_warm(self, gpt):
        trace = one_function_trace([1] + [0] * 5 + [1] + [0] * 5)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        assert r.n_cold == 1
        assert r.n_warm == 1

    def test_reinvocation_after_window_is_cold(self, gpt):
        counts = np.zeros(30, dtype=np.int64)
        counts[[0, 15]] = 1  # gap 15 > window 10
        r = Simulation(one_function_trace(counts), {0: gpt}, OpenWhiskPolicy()).run()
        assert r.n_cold == 2

    def test_same_minute_extra_invocations_are_warm(self, gpt):
        trace = one_function_trace([3, 0])
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        assert r.n_cold == 1
        assert r.n_warm == 2
        expected = gpt.highest.cold_service_time_s + 2 * gpt.highest.warm_service_time_s
        assert r.total_service_time_s == pytest.approx(expected)

    def test_keepalive_extends_on_reinvocation(self, gpt):
        # Invocations at 0 and 5: keep-alive must last through minute 15.
        counts = np.zeros(20, dtype=np.int64)
        counts[[0, 5]] = 1
        r = Simulation(one_function_trace(counts), {0: gpt}, OpenWhiskPolicy()).run()
        mem = r.memory_series_mb
        assert mem[15] == pytest.approx(gpt.highest.memory_mb)
        assert mem[16] == 0.0

    def test_fixed_policy_memory_accounting(self, gpt):
        trace = one_function_trace([1] + [0] * 19)
        cm = CostModel(usd_per_mb_minute=1.0)
        cfg = SimulationConfig(cost_model=cm)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        # Alive during the invocation minute + the 10-minute window.
        assert r.keepalive_cost_usd == pytest.approx(11 * gpt.highest.memory_mb)

    def test_accuracy_is_serving_variant_accuracy(self, gpt):
        trace = one_function_trace([1, 0, 1])
        r = Simulation(trace, {0: gpt}, FixedKeepAlivePolicy("lowest")).run()
        assert r.mean_accuracy == pytest.approx(gpt.lowest.accuracy)

    def test_ideal_series_marks_invocation_minutes(self, gpt):
        trace = one_function_trace([1, 0, 1, 0])
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        ideal = r.ideal_memory_series_mb
        np.testing.assert_allclose(
            ideal, [gpt.highest.memory_mb, 0, gpt.highest.memory_mb, 0]
        )

    def test_warm_plus_cold_equals_invocations(self, small_trace, assignment):
        r = Simulation(small_trace, assignment, OpenWhiskPolicy()).run()
        assert r.n_warm + r.n_cold == r.n_invocations
        assert r.n_invocations == small_trace.total_invocations()

    def test_record_series_off(self, gpt):
        trace = one_function_trace([1, 0])
        cfg = SimulationConfig(record_series=False)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        assert r.memory_series_mb is None

    def test_pool_stats_collected(self, gpt):
        trace = one_function_trace([1] + [0] * 12)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        assert r.pool_stats is not None
        assert r.pool_stats.cold_creates == 1
        # warm 11 minutes (invocation minute + 10 window minutes)
        assert r.pool_stats.warm_minutes_by_level[gpt.highest.level] == 11

    def test_track_containers_off(self, gpt):
        trace = one_function_trace([1, 0])
        cfg = SimulationConfig(track_containers=False)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        assert r.pool_stats is None

    def test_overhead_measured_when_enabled(self, gpt):
        trace = one_function_trace([1, 1, 1, 0])
        cfg = SimulationConfig(measure_overhead=True)
        r = Simulation(trace, {0: gpt}, OpenWhiskPolicy(), cfg).run()
        assert r.policy_overhead_s > 0
        assert r.n_policy_decisions > 0

    def test_incomplete_assignment_rejected(self, gpt, small_trace):
        with pytest.raises(ValueError, match="assignment"):
            Simulation(small_trace, {0: gpt}, OpenWhiskPolicy())

    def test_deterministic(self, small_trace, assignment):
        a = Simulation(small_trace, assignment, OpenWhiskPolicy()).run()
        b = Simulation(small_trace, assignment, OpenWhiskPolicy()).run()
        assert a.total_service_time_s == b.total_service_time_s
        assert a.keepalive_cost_usd == b.keepalive_cost_usd


class TestEngineWindows:
    @pytest.mark.parametrize("window", [5, 10, 15])
    def test_window_controls_keepalive_span(self, gpt, window):
        counts = np.zeros(40, dtype=np.int64)
        counts[0] = 1
        cfg = SimulationConfig(keep_alive_window=window)
        r = Simulation(one_function_trace(counts), {0: gpt}, OpenWhiskPolicy(), cfg).run()
        mem = r.memory_series_mb
        assert mem[window] > 0
        assert mem[window + 1] == 0.0
