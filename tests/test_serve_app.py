"""The HTTP serving layer (:mod:`repro.serve.app`).

These tests run the stdlib ``ThreadingHTTPServer`` transport — the one
that works in every environment — on an ephemeral loopback port and
drive it with :mod:`urllib`. The FastAPI factory is exercised only for
its import gate (fastapi is an optional extra and absent here).
"""

from __future__ import annotations

import contextlib
import json
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.runtime.checkpoint import WIRE_FORMAT, SimulationState
from repro.serve.app import (
    ApiError,
    ServeLimits,
    SessionManager,
    make_server,
    open_session_from_spec,
)

SYNTH_SPEC = {
    "synthetic": {"n_functions": 6, "horizon_minutes": 48, "seed": 3},
    "policy": "pulse",
}


@contextlib.contextmanager
def running_server(**kwargs):
    """A live stdlib server on an ephemeral loopback port."""
    server = make_server("127.0.0.1", port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}", server
    finally:
        server.manager.close_all()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


@pytest.fixture()
def base_url():
    with running_server() as (url, _server):
        yield url


def request(url, method="GET", body=None, raw=False, headers=None):
    """Issue a request; return (status, decoded-or-raw body)."""
    data = None
    headers = dict(headers or {})
    if body is not None:
        data = body if isinstance(body, bytes) else json.dumps(body).encode()
        if not isinstance(body, bytes):
            headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            payload = resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        status = exc.code
    if raw:
        return status, payload
    return status, json.loads(payload)


class TestLifecycle:
    def test_healthz(self, base_url):
        status, body = request(f"{base_url}/v1/healthz")
        assert (status, body) == (200, {"status": "ok"})

    def test_create_advance_result(self, base_url):
        status, info = request(
            f"{base_url}/v1/sessions", "POST", SYNTH_SPEC
        )
        assert status == 200
        sid = info["id"]
        assert info["next_minute"] == 0
        assert not info["done"]

        status, step = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST", {}
        )
        assert status == 200
        assert step["minute"] == 0
        assert isinstance(step["decisions"], list)

        # result is 409 until the horizon...
        status, body = request(f"{base_url}/v1/sessions/{sid}/result")
        assert status == 409

        # ...jump to the last minute and read it out.
        status, step = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST", {"minute": 47}
        )
        assert status == 200
        status, summary = request(f"{base_url}/v1/sessions/{sid}/result")
        assert status == 200
        assert summary["invocations"] >= 0
        assert "keepalive_cost_usd" in summary

    def test_list_and_delete(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        _, listing = request(f"{base_url}/v1/sessions")
        assert sid in [s["id"] for s in listing["sessions"]]
        status, body = request(
            f"{base_url}/v1/sessions/{sid}", "DELETE"
        )
        assert (status, body["closed"]) == (200, True)
        status, _ = request(f"{base_url}/v1/sessions/{sid}")
        assert status == 404

    def test_unknown_session_404(self, base_url):
        for path in ("", "/advance", "/metrics", "/result"):
            method = "POST" if path == "/advance" else "GET"
            status, body = request(
                f"{base_url}/v1/sessions/nope{path}", method,
                {} if method == "POST" else None,
            )
            assert status == 404, path

    def test_bad_spec_400(self, base_url):
        cases = [
            {},  # no workload
            {"synthetic": {"n_functions": 4}, "meta": {"n_functions": 4}},
            {"synthetic": {"n_functions": 4}, "turbo": True},
            {"synthetic": {"n_functions": -1}},
        ]
        for spec in cases:
            status, body = request(f"{base_url}/v1/sessions", "POST", spec)
            assert status == 400, spec
            assert "error" in body

    def test_rewind_is_409(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 10})
        status, body = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST", {"minute": 3}
        )
        assert status == 409
        assert "already executed" in body["error"]


class TestReadouts:
    def test_metrics_exposition(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 5})
        status, text = request(
            f"{base_url}/v1/sessions/{sid}/metrics", raw=True
        )
        assert status == 200
        assert b"# TYPE" in text

    def test_metrics_409_when_telemetry_off(self, base_url):
        spec = dict(SYNTH_SPEC, observe=False)
        _, info = request(f"{base_url}/v1/sessions", "POST", spec)
        status, _ = request(
            f"{base_url}/v1/sessions/{info['id']}/metrics"
        )
        assert status == 409

    def test_decisions_filtering(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 20})
        _, body = request(f"{base_url}/v1/sessions/{sid}/decisions")
        records = body["decisions"]
        assert records and all("kind" in r for r in records)
        fid = next(r["fid"] for r in records if "fid" in r)
        _, body = request(
            f"{base_url}/v1/sessions/{sid}/decisions?fid={fid}"
        )
        assert body["decisions"]
        assert all(r["fid"] == fid for r in body["decisions"])
        _, body = request(
            f"{base_url}/v1/sessions/{sid}/decisions?kind=plan"
        )
        assert all(r["kind"] == "plan" for r in body["decisions"])


class TestSnapshotRestore:
    def test_snapshot_restore_over_http(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 11})
        status, payload = request(
            f"{base_url}/v1/sessions/{sid}/snapshot", raw=True
        )
        assert status == 200
        # The wire form is a JSON envelope, not a pickle stream: it is
        # inspectable as plain JSON and decodes through the codec.
        envelope = json.loads(payload)
        assert envelope["format"] == WIRE_FORMAT
        assert isinstance(
            SimulationState.from_wire_json(payload), SimulationState
        )

        status, restored = request(
            f"{base_url}/v1/sessions/restore", "POST", payload
        )
        assert status == 200
        assert restored["id"] != sid
        assert restored["next_minute"] == 12

        # Both copies finish to the same summary.
        for s in (sid, restored["id"]):
            request(f"{base_url}/v1/sessions/{s}/advance", "POST",
                    {"minute": 47})
        _, a = request(f"{base_url}/v1/sessions/{sid}/result")
        _, b = request(f"{base_url}/v1/sessions/{restored['id']}/result")
        a.pop("wall_clock_s", None)
        b.pop("wall_clock_s", None)
        assert a == b

    def test_restore_garbage_400(self, base_url):
        for payload in (
            b"not json at all",
            json.dumps({"format": "something-else"}).encode(),
            json.dumps({"format": WIRE_FORMAT}).encode(),  # missing keys
        ):
            status, body = request(
                f"{base_url}/v1/sessions/restore", "POST", payload
            )
            assert status == 400, payload
            assert "error" in body

    def test_restore_rejects_tampered_payload(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 3})
        _, payload = request(
            f"{base_url}/v1/sessions/{sid}/snapshot", raw=True
        )
        envelope = json.loads(payload)
        envelope["payload_b64"] = envelope["payload_b64"][:-8] + "AAAAAAA="
        status, body = request(
            f"{base_url}/v1/sessions/restore", "POST",
            json.dumps(envelope).encode(),
        )
        assert status == 400
        assert "sha" in body["error"].lower() or "payload" in body["error"]


FAULTY_ENGINE_SPECS = [
    pytest.param(engine, id=engine) for engine in ("reference", "fast", "fleet")
]


class TestFaultPlanRestore:
    """Snapshot→restore over HTTP under an active FaultPlan: the plan's
    spawn failures and its trace-perturbation handshake must survive
    the wire round trip on every engine."""

    @pytest.mark.parametrize("engine", FAULTY_ENGINE_SPECS)
    def test_roundtrip_under_faults(self, base_url, engine):
        spec = {
            "synthetic": {"n_functions": 5, "horizon_minutes": 36, "seed": 9},
            "policy": "pulse",
            "engine": engine,
            "faults": "seed=7,spawn=0.2,slow=0.1",
        }
        _, info = request(f"{base_url}/v1/sessions", "POST", spec)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 17})
        _, payload = request(
            f"{base_url}/v1/sessions/{sid}/snapshot", raw=True
        )
        status, restored = request(
            f"{base_url}/v1/sessions/restore", "POST", payload
        )
        assert status == 200
        rid = restored["id"]
        assert restored["next_minute"] == 18

        for s in (sid, rid):
            request(f"{base_url}/v1/sessions/{s}/advance", "POST",
                    {"minute": 35})
        _, a = request(f"{base_url}/v1/sessions/{sid}/result")
        _, b = request(f"{base_url}/v1/sessions/{rid}/result")
        a.pop("wall_clock_s", None)
        b.pop("wall_clock_s", None)
        assert a == b
        # Fault injection visibly happened (spawn=0.2 over 36 minutes)
        # and both copies agree decision-for-decision.
        _, da = request(f"{base_url}/v1/sessions/{sid}/decisions")
        _, db = request(f"{base_url}/v1/sessions/{rid}/decisions")
        assert [d for d in da["decisions"] if d["t"] >= 18] == [
            d for d in db["decisions"] if d["t"] >= 18
        ]


class TestAuth:
    def test_token_required_everywhere_but_probes(self):
        with running_server(token="hunter2") as (url, _server):
            for path in ("/v1/healthz", "/v1/readyz"):
                status, _ = request(f"{url}{path}")
                assert status == 200, path
            status, body = request(f"{url}/v1/sessions")
            assert status == 401
            assert "bearer" in body["error"].lower()
            status, _ = request(
                f"{url}/v1/sessions",
                headers={"Authorization": "Bearer wrong"},
            )
            assert status == 401
            status, body = request(
                f"{url}/v1/sessions",
                headers={"Authorization": "Bearer hunter2"},
            )
            assert (status, body) == (200, {"sessions": []})

    def test_serve_refuses_non_loopback_without_token(self):
        from repro.serve.app import serve

        with pytest.raises(SystemExit, match="--token"):
            serve("0.0.0.0", port=0)


class TestBackpressure:
    def test_session_table_full_503(self):
        limits = ServeLimits(max_sessions=1, retry_after_s=7.0)
        with running_server(limits=limits) as (url, _server):
            status, _ = request(f"{url}/v1/sessions", "POST", SYNTH_SPEC)
            assert status == 200
            req = urllib.request.Request(
                f"{url}/v1/sessions", data=json.dumps(SYNTH_SPEC).encode(),
                method="POST", headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(req, timeout=10)
            assert exc_info.value.code == 503
            assert exc_info.value.headers["Retry-After"] == "7"

    def test_inflight_gate_429(self):
        manager = SessionManager(limits=ServeLimits(max_inflight=1))
        sid = manager.create(dict(SYNTH_SPEC))["id"]
        managed = manager._get(sid)
        assert managed.gate.acquire(blocking=False)  # simulate in-flight
        try:
            with pytest.raises(ApiError) as exc_info:
                manager.advance(sid, {})
            assert exc_info.value.status == 429
            assert exc_info.value.retry_after is not None
        finally:
            managed.gate.release()
        assert manager.advance(sid, {})["minute"] == 0
        manager.close_all()

    def test_deadline_503_when_session_stays_busy(self):
        manager = SessionManager(limits=ServeLimits(deadline_s=0.05))
        sid = manager.create(dict(SYNTH_SPEC))["id"]
        managed = manager._get(sid)
        with managed.lock:  # a stuck advance holds the session lock
            with pytest.raises(ApiError) as exc_info:
                manager.advance(sid, {})
        assert exc_info.value.status == 503
        assert "deadline" in str(exc_info.value)
        manager.close_all()


class TestBodyHardening:
    def test_oversized_body_413(self):
        limits = ServeLimits(max_body_bytes=64)
        with running_server(limits=limits) as (url, _server):
            big = {"synthetic": {"n_functions": 4}, "policy": "x" * 256}
            status, body = request(f"{url}/v1/sessions", "POST", big)
            assert status == 413
            assert "exceeds" in body["error"]

    def test_truncated_body_400(self):
        with running_server(
            limits=ServeLimits(read_timeout_s=0.5)
        ) as (url, _server):
            host, port = url.removeprefix("http://").split(":")
            with socket.create_connection(
                (host, int(port)), timeout=10
            ) as sock:
                # Promise 100 bytes, send 10, half-close: the server
                # must answer a structured 400, not hang the worker.
                sock.sendall(
                    b"POST /v1/sessions HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 100\r\n\r\n" + b"{" + b"x" * 9
                )
                sock.shutdown(socket.SHUT_WR)
                reply = b""
                while b"truncated" not in reply:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    reply += chunk
            assert b"400" in reply.split(b"\r\n", 1)[0]
            assert b"truncated" in reply

    def test_bad_content_length_400(self):
        with running_server() as (url, _server):
            host, port = url.removeprefix("http://").split(":")
            with socket.create_connection(
                (host, int(port)), timeout=10
            ) as sock:
                sock.sendall(
                    b"POST /v1/sessions HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Length: banana\r\n\r\n"
                )
                reply = sock.recv(65536)
            assert b"400" in reply.split(b"\r\n", 1)[0]


class TestDrainAndReadiness:
    def test_readyz_flips_on_drain(self):
        with running_server() as (url, server):
            status, body = request(f"{url}/v1/readyz")
            assert (status, body) == (200, {"status": "ready"})
            server.manager.drain()
            status, body = request(f"{url}/v1/readyz")
            assert status == 503
            # Liveness stays green while draining; new work is refused.
            status, _ = request(f"{url}/v1/healthz")
            assert status == 200
            status, _ = request(f"{url}/v1/sessions", "POST", SYNTH_SPEC)
            assert status == 503

    def test_drain_refuses_advances_and_stops_tickers(self):
        manager = SessionManager()
        sid = manager.create(dict(SYNTH_SPEC))["id"]
        manager.tick(sid, {"action": "start", "interval_ms": 60_000})
        manager.drain()
        assert manager.draining
        assert manager.info(sid)["ticking"] is False
        with pytest.raises(ApiError) as exc_info:
            manager.advance(sid, {})
        assert exc_info.value.status == 503
        manager.drain()  # idempotent
        manager.close_all()


class TestCloseIdempotency:
    def test_double_close_direct(self):
        manager = SessionManager()
        sid = manager.create(dict(SYNTH_SPEC))["id"]
        assert manager.close(sid)["closed"] is True
        with pytest.raises(ApiError):
            manager.close(sid)
        assert manager.close(sid, missing_ok=True)["closed"] is False
        manager.close_all()
        manager.close_all()  # close_all after close_all is a no-op

    def test_signal_handler_racing_http_delete(self):
        """close_all (the shutdown path) racing per-session DELETEs:
        every session is closed exactly once and nothing raises."""
        manager = SessionManager()
        sids = [manager.create(dict(SYNTH_SPEC))["id"] for _ in range(8)]
        for sid in sids[::2]:
            manager.tick(sid, {"action": "start", "interval_ms": 60_000})
        errors: list[BaseException] = []

        def deleter():
            try:
                for sid in sids:
                    manager.close(sid, missing_ok=True)
            except BaseException as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=deleter) for _ in range(4)]
        threads.append(threading.Thread(target=manager.close_all))
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not errors
        assert manager.list() == []


class TestOnlineAndTick:
    def test_online_session_invocations(self, base_url):
        spec = {"meta": {"n_functions": 4, "horizon_minutes": 20}}
        _, info = request(f"{base_url}/v1/sessions", "POST", spec)
        sid = info["id"]
        assert info["online"]
        status, step = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST",
            {"invocations": {"1": 2, "3": 1}},
        )
        assert status == 200
        assert step["n_invocations"] == 3

    def test_tick_runs_to_horizon(self, base_url):
        spec = {
            "synthetic": {
                "n_functions": 4, "horizon_minutes": 24, "seed": 5
            }
        }
        _, info = request(f"{base_url}/v1/sessions", "POST", spec)
        sid = info["id"]
        status, info = request(
            f"{base_url}/v1/sessions/{sid}/tick", "POST",
            {"action": "start", "interval_ms": 0},
        )
        assert status == 200
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, info = request(f"{base_url}/v1/sessions/{sid}")
            if info["done"]:
                break
            time.sleep(0.05)
        assert info["done"], info
        assert info["tick_error"] is None
        status, _ = request(f"{base_url}/v1/sessions/{sid}/result")
        assert status == 200

    def test_double_start_is_409(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/tick", "POST",
                {"action": "start", "interval_ms": 60_000})
        status, body = request(
            f"{base_url}/v1/sessions/{sid}/tick", "POST",
            {"action": "start"},
        )
        assert status == 409
        status, info = request(
            f"{base_url}/v1/sessions/{sid}/tick", "POST",
            {"action": "stop"},
        )
        assert status == 200
        assert not info["ticking"]


class TestManagerDirect:
    """SessionManager behaviors not worth an HTTP round trip."""

    def test_spec_builder_defaults_observe_on(self):
        session = open_session_from_spec(dict(SYNTH_SPEC))
        assert session.stepper.obs is not None

    def test_manager_ids_are_sequential(self):
        manager = SessionManager()
        a = manager.create(dict(SYNTH_SPEC))
        b = manager.create(dict(SYNTH_SPEC))
        assert (a["id"], b["id"]) == ("s1", "s2")
        manager.close_all()
        assert manager.list() == []

    def test_api_error_carries_status(self):
        with pytest.raises(ApiError) as exc_info:
            SessionManager().info("missing")
        assert exc_info.value.status == 404

    def test_fastapi_factory_gated(self):
        pytest.importorskip("fastapi", reason="optional extra")
        from repro.serve.app import create_fastapi_app

        app = create_fastapi_app()
        assert app is not None
