"""The HTTP serving layer (:mod:`repro.serve.app`).

These tests run the stdlib ``ThreadingHTTPServer`` transport — the one
that works in every environment — on an ephemeral loopback port and
drive it with :mod:`urllib`. The FastAPI factory is exercised only for
its import gate (fastapi is an optional extra and absent here).
"""

from __future__ import annotations

import json
import pickle
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.runtime.checkpoint import SimulationState
from repro.serve.app import (
    ApiError,
    SessionManager,
    make_server,
    open_session_from_spec,
)

SYNTH_SPEC = {
    "synthetic": {"n_functions": 6, "horizon_minutes": 48, "seed": 3},
    "policy": "pulse",
}


@pytest.fixture()
def base_url():
    server = make_server("127.0.0.1", port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        server.manager.close_all()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)


def request(url, method="GET", body=None, raw=False):
    """Issue a request; return (status, decoded-or-raw body)."""
    data = None
    headers = {}
    if body is not None:
        data = body if isinstance(body, bytes) else json.dumps(body).encode()
        if not isinstance(body, bytes):
            headers["Content-Type"] = "application/json"
    req = urllib.request.Request(url, data=data, method=method,
                                 headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            payload = resp.read()
            status = resp.status
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        status = exc.code
    if raw:
        return status, payload
    return status, json.loads(payload)


class TestLifecycle:
    def test_healthz(self, base_url):
        status, body = request(f"{base_url}/v1/healthz")
        assert (status, body) == (200, {"status": "ok"})

    def test_create_advance_result(self, base_url):
        status, info = request(
            f"{base_url}/v1/sessions", "POST", SYNTH_SPEC
        )
        assert status == 200
        sid = info["id"]
        assert info["next_minute"] == 0
        assert not info["done"]

        status, step = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST", {}
        )
        assert status == 200
        assert step["minute"] == 0
        assert isinstance(step["decisions"], list)

        # result is 409 until the horizon...
        status, body = request(f"{base_url}/v1/sessions/{sid}/result")
        assert status == 409

        # ...jump to the last minute and read it out.
        status, step = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST", {"minute": 47}
        )
        assert status == 200
        status, summary = request(f"{base_url}/v1/sessions/{sid}/result")
        assert status == 200
        assert summary["invocations"] >= 0
        assert "keepalive_cost_usd" in summary

    def test_list_and_delete(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        _, listing = request(f"{base_url}/v1/sessions")
        assert sid in [s["id"] for s in listing["sessions"]]
        status, body = request(
            f"{base_url}/v1/sessions/{sid}", "DELETE"
        )
        assert (status, body["closed"]) == (200, True)
        status, _ = request(f"{base_url}/v1/sessions/{sid}")
        assert status == 404

    def test_unknown_session_404(self, base_url):
        for path in ("", "/advance", "/metrics", "/result"):
            method = "POST" if path == "/advance" else "GET"
            status, body = request(
                f"{base_url}/v1/sessions/nope{path}", method,
                {} if method == "POST" else None,
            )
            assert status == 404, path

    def test_bad_spec_400(self, base_url):
        cases = [
            {},  # no workload
            {"synthetic": {"n_functions": 4}, "meta": {"n_functions": 4}},
            {"synthetic": {"n_functions": 4}, "turbo": True},
            {"synthetic": {"n_functions": -1}},
        ]
        for spec in cases:
            status, body = request(f"{base_url}/v1/sessions", "POST", spec)
            assert status == 400, spec
            assert "error" in body

    def test_rewind_is_409(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 10})
        status, body = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST", {"minute": 3}
        )
        assert status == 409
        assert "already executed" in body["error"]


class TestReadouts:
    def test_metrics_exposition(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 5})
        status, text = request(
            f"{base_url}/v1/sessions/{sid}/metrics", raw=True
        )
        assert status == 200
        assert b"# TYPE" in text

    def test_metrics_409_when_telemetry_off(self, base_url):
        spec = dict(SYNTH_SPEC, observe=False)
        _, info = request(f"{base_url}/v1/sessions", "POST", spec)
        status, _ = request(
            f"{base_url}/v1/sessions/{info['id']}/metrics"
        )
        assert status == 409

    def test_decisions_filtering(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 20})
        _, body = request(f"{base_url}/v1/sessions/{sid}/decisions")
        records = body["decisions"]
        assert records and all("kind" in r for r in records)
        fid = next(r["fid"] for r in records if "fid" in r)
        _, body = request(
            f"{base_url}/v1/sessions/{sid}/decisions?fid={fid}"
        )
        assert body["decisions"]
        assert all(r["fid"] == fid for r in body["decisions"])
        _, body = request(
            f"{base_url}/v1/sessions/{sid}/decisions?kind=plan"
        )
        assert all(r["kind"] == "plan" for r in body["decisions"])


class TestSnapshotRestore:
    def test_snapshot_restore_over_http(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/advance", "POST",
                {"minute": 11})
        status, payload = request(
            f"{base_url}/v1/sessions/{sid}/snapshot", raw=True
        )
        assert status == 200
        assert isinstance(pickle.loads(payload), SimulationState)

        status, restored = request(
            f"{base_url}/v1/sessions/restore", "POST", payload
        )
        assert status == 200
        assert restored["id"] != sid
        assert restored["next_minute"] == 12

        # Both copies finish to the same summary.
        for s in (sid, restored["id"]):
            request(f"{base_url}/v1/sessions/{s}/advance", "POST",
                    {"minute": 47})
        _, a = request(f"{base_url}/v1/sessions/{sid}/result")
        _, b = request(f"{base_url}/v1/sessions/{restored['id']}/result")
        a.pop("wall_clock_s", None)
        b.pop("wall_clock_s", None)
        assert a == b

    def test_restore_garbage_400(self, base_url):
        status, body = request(
            f"{base_url}/v1/sessions/restore", "POST", b"not a pickle"
        )
        assert status == 400


class TestOnlineAndTick:
    def test_online_session_invocations(self, base_url):
        spec = {"meta": {"n_functions": 4, "horizon_minutes": 20}}
        _, info = request(f"{base_url}/v1/sessions", "POST", spec)
        sid = info["id"]
        assert info["online"]
        status, step = request(
            f"{base_url}/v1/sessions/{sid}/advance", "POST",
            {"invocations": {"1": 2, "3": 1}},
        )
        assert status == 200
        assert step["n_invocations"] == 3

    def test_tick_runs_to_horizon(self, base_url):
        spec = {
            "synthetic": {
                "n_functions": 4, "horizon_minutes": 24, "seed": 5
            }
        }
        _, info = request(f"{base_url}/v1/sessions", "POST", spec)
        sid = info["id"]
        status, info = request(
            f"{base_url}/v1/sessions/{sid}/tick", "POST",
            {"action": "start", "interval_ms": 0},
        )
        assert status == 200
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            _, info = request(f"{base_url}/v1/sessions/{sid}")
            if info["done"]:
                break
            time.sleep(0.05)
        assert info["done"], info
        assert info["tick_error"] is None
        status, _ = request(f"{base_url}/v1/sessions/{sid}/result")
        assert status == 200

    def test_double_start_is_409(self, base_url):
        _, info = request(f"{base_url}/v1/sessions", "POST", SYNTH_SPEC)
        sid = info["id"]
        request(f"{base_url}/v1/sessions/{sid}/tick", "POST",
                {"action": "start", "interval_ms": 60_000})
        status, body = request(
            f"{base_url}/v1/sessions/{sid}/tick", "POST",
            {"action": "start"},
        )
        assert status == 409
        status, info = request(
            f"{base_url}/v1/sessions/{sid}/tick", "POST",
            {"action": "stop"},
        )
        assert status == 200
        assert not info["ticking"]


class TestManagerDirect:
    """SessionManager behaviors not worth an HTTP round trip."""

    def test_spec_builder_defaults_observe_on(self):
        session = open_session_from_spec(dict(SYNTH_SPEC))
        assert session.stepper.obs is not None

    def test_manager_ids_are_sequential(self):
        manager = SessionManager()
        a = manager.create(dict(SYNTH_SPEC))
        b = manager.create(dict(SYNTH_SPEC))
        assert (a["id"], b["id"]) == ("s1", "s2")
        manager.close_all()
        assert manager.list() == []

    def test_api_error_carries_status(self):
        with pytest.raises(ApiError) as exc_info:
            SessionManager().info("missing")
        assert exc_info.value.status == 404

    def test_fastapi_factory_gated(self):
        pytest.importorskip("fastapi", reason="optional extra")
        from repro.serve.app import create_fastapi_app

        app = create_fastapi_app()
        assert app is not None
