"""Crash durability of the serving layer (:mod:`repro.serve.journal`).

The golden contract mirrors the batch chaos drill: a serving process
killed at any instant loses nothing acknowledged. Sessions are advanced
partway, the manager is abandoned without any shutdown step (the
in-process stand-in for SIGKILL — ``DurableAppender`` flushes every
record to the kernel, so process death is survivable by construction),
and a fresh supervisor must rebuild every session **bit-identically**:
driven to the horizon, recovered sessions match ``Simulation.run()`` on
all three engines, fault plans included.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.runtime.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    WIRE_FIELDS,
    WIRE_FORMAT,
    SimulationState,
)
from repro.serve import JournalError, JournalSupervisor, SessionJournal
from repro.serve.app import ServeLimits, SessionManager
from repro.serve.journal import read_records
from tests.test_serve_session import _batch, _comparable

ENGINES = ("reference", "fast", "fleet")
FAULT_SPECS = (None, "seed=7,spawn=0.2,slow=0.1")


def _spec(engine, faults=None, seed=3):
    spec = {
        "synthetic": {"n_functions": 5, "horizon_minutes": 48, "seed": seed},
        "policy": "pulse",
        "engine": engine,
    }
    if faults is not None:
        spec["faults"] = faults
    return spec


def _journaled_manager(tmp_path, every_minutes=240, **limit_kwargs):
    return SessionManager(
        limits=ServeLimits(**limit_kwargs) if limit_kwargs else None,
        journal=JournalSupervisor(
            tmp_path / "journal", every_minutes=every_minutes
        ),
    )


class TestWireCodec:
    """The JSON envelope is a lossless re-encoding of the pickle
    snapshot format it replaced on the wire."""

    def _state(self, tiny_trace, tiny_assignment, minute=10):
        from repro.serve import open_session

        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        session.advance(minute)
        return session.snapshot()

    def test_round_trip_is_bit_identical(self, tiny_trace, tiny_assignment):
        state = self._state(tiny_trace, tiny_assignment)
        restored = SimulationState.from_wire_json(state.to_wire_json())
        assert restored == state
        assert pickle.dumps(restored) == pickle.dumps(state)
        # Canonical JSON: re-encoding the restored state is byte-stable.
        assert restored.to_wire_json() == state.to_wire_json()

    def test_envelope_matches_pinned_schema(self, tiny_trace, tiny_assignment):
        envelope = json.loads(
            self._state(tiny_trace, tiny_assignment).to_wire_json()
        )
        assert set(envelope) == set(WIRE_FIELDS)
        assert envelope["format"] == WIRE_FORMAT
        assert envelope["schema_version"] == CHECKPOINT_SCHEMA_VERSION

    def test_rejections(self, tiny_trace, tiny_assignment):
        good = json.loads(self._state(tiny_trace, tiny_assignment).to_wire_json())
        cases = {
            "not json": "}{",
            "wrong format": json.dumps(dict(good, format="other")),
            "wrong version": json.dumps(dict(good, schema_version=999)),
            "missing keys": json.dumps({"format": WIRE_FORMAT}),
            "bad base64": json.dumps(dict(good, payload_b64="!!!")),
            "sha mismatch": json.dumps(
                dict(good, payload_sha256="0" * 64)
            ),
        }
        for label, text in cases.items():
            with pytest.raises(ValueError):
                SimulationState.from_wire_json(text)


class TestJournalPrimitives:
    def test_begin_record_compact_cycle(self, tmp_path):
        manager = _journaled_manager(tmp_path)
        sid = manager.create(_spec("fast"))["id"]
        managed = manager._get(sid)
        journal = managed.journal
        assert journal is not None and journal.path.exists()

        for _ in range(5):
            manager.advance(sid, {})
        records = read_records(journal.path)
        assert records[0]["kind"] == "open"
        assert [r["minute"] for r in records[1:]] == [0, 1, 2, 3, 4]

        with managed.lock:
            journal.compact(managed.session)
        assert journal.snapshot_path.exists()
        # Compaction resets the log to just the open header.
        assert [r["kind"] for r in read_records(journal.path)] == ["open"]
        manager.close_all()

    def test_cadence_compaction_is_a_function_of_the_minute(self, tmp_path):
        manager = _journaled_manager(tmp_path, every_minutes=16)
        sid = manager.create(_spec("fast"))["id"]
        journal = manager._get(sid).journal
        manager.advance(sid, {"minute": 14})
        assert not journal.snapshot_path.exists()
        manager.advance(sid, {"minute": 16})  # crosses the 16-minute bucket
        assert journal.snapshot_path.exists()
        manager.close_all()

    def test_close_deletes_but_drain_keeps(self, tmp_path):
        manager = _journaled_manager(tmp_path)
        keep = manager.create(_spec("fast", seed=1))["id"]
        gone = manager.create(_spec("fast", seed=2))["id"]
        paths = {
            sid: (managed.journal.path, managed.journal.snapshot_path)
            for sid, managed in
            ((keep, manager._get(keep)), (gone, manager._get(gone)))
        }
        manager.advance(keep, {})
        manager.close(gone)
        assert not any(p.exists() for p in paths[gone])
        manager.drain()
        assert paths[keep][0].exists() and paths[keep][1].exists()

    def test_torn_tail_is_discarded(self, tmp_path):
        journal_dir = tmp_path / "journal"
        manager = _journaled_manager(tmp_path)
        sid = manager.create(_spec("fast"))["id"]
        for _ in range(4):
            manager.advance(sid, {})
        path = manager._get(sid).journal.path
        with open(path, "ab") as fh:
            fh.write(b'{"v": 1, "kind": "adva')  # the SIGKILL artifact
        records = read_records(path)
        assert [r["minute"] for r in records[1:]] == [0, 1, 2, 3]

        session, _journal = JournalSupervisor(journal_dir).recover(sid)
        assert session.next_minute == 4

    def test_corrupt_middle_raises(self, tmp_path):
        manager = _journaled_manager(tmp_path)
        sid = manager.create(_spec("fast"))["id"]
        manager.advance(sid, {})
        path = manager._get(sid).journal.path
        lines = path.read_bytes().splitlines()
        lines.insert(1, b"NOT JSON")
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(JournalError, match="corrupt"):
            read_records(path)

    def test_fingerprint_mismatch_refuses_replay(self, tmp_path):
        supervisor = JournalSupervisor(tmp_path / "journal")
        manager = SessionManager(journal=supervisor)
        sid = manager.create(_spec("fast"))["id"]
        manager.advance(sid, {})
        path = manager._get(sid).journal.path
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["fingerprint"] = "0" * 64
        lines[0] = json.dumps(header, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalError, match="fingerprint"):
            JournalSupervisor(tmp_path / "journal").recover(sid)

    def test_nothing_to_recover_from_raises(self, tmp_path):
        supervisor = JournalSupervisor(tmp_path / "journal")
        journal = SessionJournal(tmp_path / "journal", "s9")
        journal.begin(None, "f" * 64)  # snapshot-only header, no snapshot
        journal.close()
        with pytest.raises(JournalError, match="no snapshot"):
            supervisor.recover("s9")


class TestCrashRecoveryGolden:
    """SIGKILL-equivalent: abandon a journaled manager mid-run, recover
    into a fresh one, finish — bytes must match the batch path."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("faults", FAULT_SPECS)
    def test_recovered_sessions_match_batch(
        self, tmp_path, tiny_trace, tiny_assignment, engine, faults
    ):
        # The HTTP spec path regenerates its own trace; to golden-test
        # against the *fixture* trace, drive the journal directly.
        from repro.serve import open_session

        supervisor = JournalSupervisor(
            tmp_path / "journal", every_minutes=16
        )
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            engine=engine, faults=faults,
        )
        journal = supervisor.create("s1", None, session)
        for minute in range(25):
            journal.record_advance(minute, None)
            session.advance(minute)
            journal.maybe_compact(session)
        # No close(), no sync(): the process "dies" here.

        recovered, _journal = JournalSupervisor(
            tmp_path / "journal", every_minutes=16
        ).recover("s1")
        assert recovered.next_minute == 25
        assert _comparable(recovered.result()) == _comparable(
            _batch(tiny_trace, tiny_assignment, engine, faults)
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_manager_recover_via_spec(self, tmp_path, engine):
        """The HTTP path: sessions created from JSON specs, advanced,
        crashed, recovered by SessionManager.recover() — and the
        recovered run equals an uninterrupted one."""
        manager = _journaled_manager(tmp_path, every_minutes=16)
        sids = [
            manager.create(_spec(engine, seed=seed))["id"]
            for seed in (1, 2)
        ]
        for sid in sids:
            manager.advance(sid, {"minute": 20})
        # Abandon `manager` (crash). Recover into a fresh one.
        fresh = _journaled_manager(tmp_path, every_minutes=16)
        recovered = fresh.recover()
        assert sorted(info["id"] for info in recovered) == sorted(sids)
        assert all(info["next_minute"] == 21 for info in recovered)

        control = SessionManager()
        for seed, sid in zip((1, 2), sids):
            cid = control.create(_spec(engine, seed=seed))["id"]
            fresh.advance(sid, {"minute": 47})
            control.advance(cid, {"minute": 47})
            a, b = fresh.result(sid), control.result(cid)
            a.pop("wall_clock_s", None)
            b.pop("wall_clock_s", None)
            assert a == b
        # New sessions never collide with recovered ids.
        new_sid = fresh.create(_spec(engine, seed=9))["id"]
        assert new_sid not in sids
        fresh.close_all()
        control.close_all()

    def test_recover_after_drain_round_trips(self, tmp_path):
        """A graceful drain leaves a directory --recover accepts: the
        deploy-restart path (SIGTERM, then recover) loses nothing."""
        manager = _journaled_manager(tmp_path)
        sid = manager.create(_spec("fast"))["id"]
        manager.advance(sid, {"minute": 30})
        manager.drain()

        fresh = _journaled_manager(tmp_path)
        infos = fresh.recover()
        assert [i["next_minute"] for i in infos] == [31]
        fresh.advance(sid, {"minute": 47})
        control = SessionManager()
        cid = control.create(_spec("fast"))["id"]
        control.advance(cid, {"minute": 47})
        a, b = fresh.result(sid), control.result(cid)
        a.pop("wall_clock_s", None)
        b.pop("wall_clock_s", None)
        assert a == b
        fresh.close_all()
        control.close_all()

    def test_restored_session_is_recoverable_immediately(self, tmp_path):
        """A session opened via snapshot-restore has no spec to rejournal
        from — the supervisor must write its snapshot at registration so
        a crash one advance later still recovers."""
        donor = SessionManager()
        did = donor.create(_spec("fast"))["id"]
        donor.advance(did, {"minute": 10})
        payload = donor.snapshot(did).encode()
        donor.close_all()

        manager = _journaled_manager(tmp_path)
        sid = manager.restore(payload)["id"]
        manager.advance(sid, {})  # minute 11, journaled
        # Crash; recover.
        fresh = _journaled_manager(tmp_path)
        infos = fresh.recover()
        assert [i["id"] for i in infos] == [sid]
        assert infos[0]["next_minute"] == 12
        fresh.close_all()
