"""The control-plane session API (:mod:`repro.serve.session`).

The golden contract: a full-trace replay through ``advance()`` — or
``replay()`` — is **bit-identical** to ``Simulation.run()`` on every
engine, with and without a fault plan; and a session snapshotted at any
minute ``k`` and restored continues to the same bytes (the resume
property test). Sessions and the batch drivers share the stepper
classes, so these tests pin that the session layer feeds them minutes
faithfully.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.checkpoint import SimulationState
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.serve import AdvanceResult, ControlSession, TraceMeta, open_session
from repro.serve.session import open_session as session_open

ENGINES = ("reference", "fast", "fleet")
FAULT_SPECS = (None, "seed=7,spawn=0.2,slow=0.1")


def _comparable(result) -> dict:
    d = result.summary()
    d.pop("wall_clock_s", None)
    return d


def _batch(trace, assignment, engine, faults=None):
    from repro.api import policy_spec
    from repro.faults.plan import FaultPlan

    spec = policy_spec("pulse")
    cfg = SimulationConfig(keep_alive_window=spec.keep_alive_window)
    if faults is not None:
        from dataclasses import replace

        cfg = replace(cfg, faults=FaultPlan.from_spec(faults))
    return Simulation(trace, assignment, spec.factory(), cfg).run(
        engine=engine
    )


class TestGoldenReplay:
    """advance()-stepped replays match Simulation.run() byte for byte."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("faults", FAULT_SPECS)
    def test_replay_matches_batch(
        self, tiny_trace, tiny_assignment, engine, faults
    ):
        batch = _batch(tiny_trace, tiny_assignment, engine, faults)
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            engine=engine, faults=faults,
        )
        assert _comparable(session.result()) == _comparable(batch)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_minute_by_minute_advance_matches_batch(
        self, tiny_trace, tiny_assignment, engine
    ):
        batch = _batch(tiny_trace, tiny_assignment, engine)
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            engine=engine,
        )
        n_inv = 0
        while not session.done:
            step = session.advance()
            assert isinstance(step, AdvanceResult)
            n_inv += step.n_invocations
        stepped = session.result()
        assert _comparable(stepped) == _comparable(batch)
        assert n_inv == batch.n_invocations
        assert np.array_equal(
            stepped.memory_series_mb, batch.memory_series_mb
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_advance_reports_per_minute_deltas(
        self, tiny_trace, tiny_assignment, engine
    ):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            engine=engine,
        )
        totals = {"n_invocations": 0, "n_cold": 0, "n_forced_downgrades": 0}
        while not session.done:
            step = session.advance()
            for key in totals:
                value = getattr(step, key)
                assert value >= 0
                totals[key] += value
        final = session.result()
        assert totals["n_invocations"] == final.n_invocations
        assert totals["n_cold"] == final.n_cold
        assert totals["n_forced_downgrades"] == final.n_forced_downgrades

    def test_simulate_facade_routes_through_sessions(
        self, tiny_trace, tiny_assignment
    ):
        # One stepping code path: the facade's plain-run branch is a
        # session replay (checkpointed runs keep the engine drivers).
        from repro.api import simulate

        result = simulate(
            tiny_trace, assignment=tiny_assignment, policy="pulse"
        )
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        assert _comparable(result) == _comparable(session.result())


class TestAdvanceSemantics:
    def test_default_minute_is_next(self, tiny_trace, tiny_assignment):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        assert session.advance().minute == 0
        assert session.advance().minute == 1
        assert session.next_minute == 2

    def test_gap_minutes_fill_from_trace(self, tiny_trace, tiny_assignment):
        jumped = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        stepped = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        jumped.advance(20)
        for _ in range(21):
            stepped.advance()
        assert _comparable(jumped.result()) == _comparable(stepped.result())

    def test_rewind_rejected(self, tiny_trace, tiny_assignment):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        session.advance(10)
        with pytest.raises(ValueError, match="already executed"):
            session.advance(5)

    def test_past_horizon_rejected(self, tiny_trace, tiny_assignment):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        with pytest.raises(ValueError, match="horizon"):
            session.advance(tiny_trace.horizon)

    def test_invocation_override_validated(self, tiny_trace, tiny_assignment):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        with pytest.raises(ValueError, match="out of range"):
            session.advance(0, {99: 1})
        with pytest.raises(ValueError, match="positive"):
            session.advance(0, {0: 0})

    def test_unknown_engine_rejected(self, tiny_trace, tiny_assignment):
        with pytest.raises(ValueError, match="unknown engine"):
            open_session(
                tiny_trace, policy="pulse", assignment=tiny_assignment,
                engine="turbo",
            )

    def test_shards_require_fleet(self, tiny_trace, tiny_assignment):
        with pytest.raises(ValueError, match="fleet"):
            open_session(
                tiny_trace, policy="pulse", assignment=tiny_assignment,
                shards=4,
            )


class TestDecisions:
    def test_decisions_carry_engine_records(self, tiny_trace, tiny_assignment):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            observe=True,
        )
        step = session.advance(5)  # fid 0's first invocation minute
        kinds = {record["kind"] for record in step.decisions}
        assert "cold" in kinds
        # advance() deltas concatenate to the full record stream.
        session.replay()
        all_records = session.decisions()
        assert [r for r in all_records if r.get("fid") == 2] == \
            session.decisions(2)
        assert all(
            r["kind"] == "plan" for r in session.decisions(kind="plan")
        )

    def test_advance_result_is_json_ready(self, tiny_trace, tiny_assignment):
        import json

        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            observe=True,
        )
        payload = session.advance(5).as_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestSnapshotRestore:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("faults", FAULT_SPECS)
    def test_restored_session_finishes_identically(
        self, tiny_trace, tiny_assignment, engine, faults
    ):
        batch = _batch(tiny_trace, tiny_assignment, engine, faults)
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            engine=engine, faults=faults,
        )
        session.advance(24)
        restored = ControlSession.restore(session.snapshot())
        assert restored.engine == engine
        assert restored.next_minute == 25
        assert _comparable(restored.result()) == _comparable(batch)

    def test_snapshot_round_trips_through_disk(
        self, tiny_trace, tiny_assignment, tmp_path
    ):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        session.advance(10)
        path = session.snapshot().save(tmp_path / "session.ckpt")
        restored = ControlSession.restore(path)
        assert _comparable(restored.result()) == _comparable(
            _batch(tiny_trace, tiny_assignment, "fast")
        )

    def test_snapshot_is_isolated_from_the_live_session(
        self, tiny_trace, tiny_assignment
    ):
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment
        )
        session.advance(5)
        state = session.snapshot()
        session.replay()  # mutate the live session past the snapshot
        restored = ControlSession.restore(state)
        assert restored.next_minute == 6

    def test_engine_checkpoint_rejected(self, tiny_trace, tiny_assignment):
        states: list[SimulationState] = []
        from repro.runtime.checkpoint import CheckpointConfig

        Simulation(
            tiny_trace, tiny_assignment,
            __import__("repro.api", fromlist=["make_policy"]).make_policy(
                "pulse"
            ),
            SimulationConfig(),
        ).run(
            engine="fast",
            checkpoint=CheckpointConfig(
                every_minutes=20, on_snapshot=states.append
            ),
        )
        with pytest.raises(ValueError, match="session snapshot"):
            ControlSession.restore(states[0])

    @given(
        k=st.integers(min_value=0, max_value=59),
        engine_idx=st.integers(min_value=0, max_value=2),
    )
    # The fixtures are read-only inputs (sessions never mutate the trace
    # or assignment), so sharing them across examples is safe.
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_resume_property(self, tiny_trace, tiny_assignment, k, engine_idx):
        """Snapshot at a random minute k, restore, replay: bit-identical
        RunResult to the uninterrupted batch run."""
        engine = ENGINES[engine_idx]
        session = open_session(
            tiny_trace, policy="pulse", assignment=tiny_assignment,
            engine=engine,
        )
        if k > 0:
            session.advance(k - 1)
        restored = ControlSession.restore(session.snapshot())
        assert _comparable(restored.result()) == _comparable(
            _batch(tiny_trace, tiny_assignment, engine)
        )


class TestOnlineMode:
    def test_online_session_takes_live_invocations(self):
        meta = TraceMeta(n_functions=4, horizon_minutes=30)
        session = open_session(meta, policy="pulse", observe=True)
        assert session.online
        step = session.advance(0, {1: 3, 2: 1})
        assert step.n_invocations == 4
        assert step.n_cold == 2
        # pair form, duplicates summed
        step = session.advance(1, [(1, 1), (1, 2)])
        assert step.n_invocations == 3

    def test_online_matches_equivalent_recorded_trace(self, zoo):
        """Feeding invocations online is the same run as replaying a
        trace holding those counts."""
        import numpy as np

        from repro.traces.schema import FunctionSpec, Trace

        counts = np.zeros((3, 40), dtype=np.int64)
        counts[0, [2, 7, 12]] = 2
        counts[1, 5] = 1
        trace = Trace(
            counts=counts,
            functions=tuple(
                FunctionSpec(i, f"fn-{i}", "online") for i in range(3)
            ),
        )
        fams = list(zoo)
        assignment = {i: fams[i % len(fams)] for i in range(3)}
        replayed = open_session(
            trace, policy="pulse", assignment=assignment
        ).result()
        online = open_session(
            TraceMeta(n_functions=3, horizon_minutes=40),
            policy="pulse", assignment=assignment,
        )
        for t in range(40):
            online.advance(t, {
                fid: int(counts[fid, t])
                for fid in range(3) if counts[fid, t]
            })
        assert _comparable(online.result()) == _comparable(replayed)

    def test_online_rejects_oracle_and_trace_faults(self):
        meta = TraceMeta(n_functions=3, horizon_minutes=30)
        with pytest.raises(ValueError, match="oracle"):
            open_session(meta, policy="ideal")
        with pytest.raises(ValueError, match="perturb"):
            open_session(meta, policy="pulse", faults="seed=3,drop=0.1")

    def test_trace_meta_validates(self):
        with pytest.raises(ValueError):
            TraceMeta(n_functions=0, horizon_minutes=10)
        with pytest.raises(ValueError):
            TraceMeta(n_functions=3, horizon_minutes=-1)


class TestFacadeShape:
    def test_open_session_is_keyword_only(self, tiny_trace, tiny_assignment):
        with pytest.raises(TypeError):
            session_open(tiny_trace, "pulse")  # noqa — the point

    def test_simulate_is_keyword_only(self, tiny_trace, tiny_assignment):
        from repro.api import simulate

        with pytest.raises(TypeError):
            simulate(tiny_trace, tiny_assignment, "pulse")
