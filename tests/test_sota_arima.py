"""Tests for repro.sota.arima."""

import numpy as np
import pytest

from repro.sota.arima import ARForecaster


class TestARForecaster:
    def test_constant_series(self):
        f = ARForecaster()
        assert f.forecast([5.0] * 20) == pytest.approx(5.0, abs=1e-6)

    def test_linear_trend_extrapolated(self):
        f = ARForecaster(order=2)
        series = np.arange(1.0, 30.0)
        assert f.forecast(series) == pytest.approx(30.0, rel=0.05)

    def test_ar1_process_learned(self):
        rng = np.random.default_rng(0)
        phi, n = 0.8, 400
        x = np.zeros(n)
        for t in range(1, n):
            x[t] = phi * x[t - 1] + rng.normal(0, 0.1)
        f = ARForecaster(order=1)
        pred = f.forecast(x)
        assert pred == pytest.approx(phi * x[-1], abs=0.3)

    def test_alternating_series(self):
        f = ARForecaster(order=2)
        series = np.array([2.0, 8.0] * 20)
        assert f.forecast(series) == pytest.approx(2.0, abs=1.0)

    def test_single_value(self):
        assert ARForecaster().forecast([7.0]) == 7.0

    def test_short_series_uses_mean(self):
        assert ARForecaster(order=3).forecast([2.0, 4.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ARForecaster().forecast([])

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            ARForecaster(order=0)

    def test_finite_on_degenerate_input(self):
        # A constant-with-one-outlier series should never produce NaN/inf.
        series = [1.0] * 30 + [1e9] + [1.0] * 30
        assert np.isfinite(ARForecaster().forecast(series))
