"""Tests for repro.sota.icebreaker."""

import numpy as np
import pytest

from repro.runtime.simulator import Simulation, SimulationConfig
from repro.sota.icebreaker import IceBreakerPolicy, fft_extrapolate
from repro.traces.schema import FunctionSpec, Trace


def one_function_trace(counts):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


class TestFftExtrapolate:
    def test_pure_sinusoid_continues(self):
        n = 128
        t = np.arange(n)
        x = np.sin(2 * np.pi * t * 8 / n)  # period 16, integral frequency
        pred = fft_extrapolate(x, 16, top_k=4)
        expected = np.sin(2 * np.pi * np.arange(n, n + 16) * 8 / n)
        np.testing.assert_allclose(pred, expected, atol=1e-8)

    def test_constant_signal(self):
        pred = fft_extrapolate(np.full(64, 3.0), 5, top_k=1)
        np.testing.assert_allclose(pred, 3.0, atol=1e-9)

    def test_periodic_binary_signal(self):
        x = np.zeros(120)
        x[::6] = 1.0  # every 6 minutes, 20 periods
        pred = fft_extrapolate(x, 12, top_k=30)
        # Prediction must be clearly higher at the firing offsets.
        firing = [i for i in range(12) if (120 + i) % 6 == 0]
        quiet = [i for i in range(12) if (120 + i) % 6 != 0]
        assert min(pred[firing]) > max(pred[quiet])

    def test_validation(self):
        with pytest.raises(ValueError):
            fft_extrapolate(np.array([]), 5, 3)
        with pytest.raises(ValueError):
            fft_extrapolate(np.ones(8), 0, 3)
        with pytest.raises(ValueError):
            fft_extrapolate(np.ones(8), 5, 0)


class TestIceBreakerPolicy:
    def test_learning_phase_fixed_window(self, gpt):
        trace = one_function_trace(np.zeros(600, dtype=np.int64))
        p = IceBreakerPolicy(min_history=32)
        p.bind(trace, {0: gpt}, 240)
        p.observe_invocation(0, 5, 1)
        assert p.predicted_minutes(0, 6) == list(range(1, 11))

    def test_periodic_function_predicted(self, gpt):
        p = IceBreakerPolicy(min_history=32, history_window=128)
        trace = one_function_trace(np.zeros(600, dtype=np.int64))
        p.bind(trace, {0: gpt}, 240)
        for m in range(0, 300, 5):
            p.observe_invocation(0, m, 1)
        predicted = p.predicted_minutes(0, 295)
        assert 5 in predicted  # next firing at offset 5
        assert 1 not in predicted

    def test_end_to_end_on_periodic_trace(self, gpt):
        counts = np.zeros(900, dtype=np.int64)
        counts[::5] = 1
        trace = one_function_trace(counts)
        cfg = SimulationConfig(keep_alive_window=240)
        r = Simulation(trace, {0: gpt}, IceBreakerPolicy(), cfg).run()
        # After the learning phase, predictions carry the warm starts.
        assert r.warm_fraction > 0.8

    def test_plan_is_highest_variant_only(self, gpt):
        p = IceBreakerPolicy()
        trace = one_function_trace(np.zeros(100, dtype=np.int64))
        p.bind(trace, {0: gpt}, 20)
        p.observe_invocation(0, 1, 1)
        plan = p.plan(0, 1)
        kept = [v for v in plan if v is not None]
        assert kept and all(v == gpt.highest for v in kept)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            IceBreakerPolicy(top_k=0)
        with pytest.raises(ValueError):
            IceBreakerPolicy(threshold=0.0)
        with pytest.raises(ValueError):
            IceBreakerPolicy(history_window=0)
