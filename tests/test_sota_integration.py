"""Tests for repro.sota.integration — PULSE layered on Wild/IceBreaker."""

import numpy as np
import pytest

from repro.core.pulse import PulseConfig, PulsePolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.sota.icebreaker import IceBreakerPolicy
from repro.sota.integration import PulseIntegratedPolicy
from repro.sota.wild import WildPolicy
from repro.traces.schema import FunctionSpec, Trace


def one_function_trace(counts):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


class TestConstruction:
    def test_name_reflects_base(self):
        assert PulseIntegratedPolicy(WildPolicy()).name == "Wild+PULSE"
        assert (
            PulseIntegratedPolicy(IceBreakerPolicy()).name == "IceBreaker+PULSE"
        )

    def test_rejects_pulse_as_base(self):
        with pytest.raises(TypeError):
            PulseIntegratedPolicy(PulsePolicy())
        with pytest.raises(TypeError):
            PulseIntegratedPolicy(PulseIntegratedPolicy(WildPolicy()))

    def test_pulse_window_pinned_to_ten(self):
        p = PulseIntegratedPolicy(WildPolicy())
        assert p.pulse.config.window == 10

    def test_explicit_pulse_config_respected(self):
        p = PulseIntegratedPolicy(WildPolicy(), PulseConfig(window=5))
        assert p.pulse.config.window == 5


class TestPlanComposition:
    def test_base_gates_pulse_variants(self, gpt):
        trace = one_function_trace(np.zeros(600, dtype=np.int64))
        p = PulseIntegratedPolicy(WildPolicy(min_samples=3, margin=0.0))
        p.bind(trace, {0: gpt}, 240)
        # Teach both layers a 4-minute timer.
        for m in range(0, 60, 4):
            p.observe_invocation(0, m, 1)
        plan = p.plan(0, 56)
        base_plan = p.base.plan(0, 56)
        for combined, base in zip(plan, base_plan):
            if base is None:
                assert combined is None  # base predicts nothing there
        # The base's concurrency gates the combined plan: Wild with zero
        # margin keeps only the timer's firing minute, so the combined
        # plan keeps strictly fewer minutes than PULSE alone would.
        kept = [v for v in plan if v is not None]
        assert kept
        assert len(kept) < sum(v is not None for v in p.pulse.plan(0, 56))

    def test_beyond_pulse_window_released(self, gpt):
        trace = one_function_trace(np.zeros(4000, dtype=np.int64))
        p = PulseIntegratedPolicy(WildPolicy(min_samples=3))
        p.bind(trace, {0: gpt}, 240)
        t = 0
        for _ in range(10):  # 60-minute idle times
            t += 60
            p.observe_invocation(0, t, 1)
        plan = p.plan(0, t)
        assert all(v is None for v in plan[10:])  # cut at PULSE's window


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def runs(self, small_trace, zoo):
        fams = list(zoo)
        assignment = {
            fid: fams[fid % len(fams)] for fid in range(small_trace.n_functions)
        }
        cfg = SimulationConfig(keep_alive_window=240)
        out = {}
        for name, factory in [
            ("wild", WildPolicy),
            ("wild+pulse", lambda: PulseIntegratedPolicy(WildPolicy())),
            ("ice", IceBreakerPolicy),
            ("ice+pulse", lambda: PulseIntegratedPolicy(IceBreakerPolicy())),
        ]:
            out[name] = Simulation(small_trace, assignment, factory(), cfg).run()
        return out

    def test_integration_cuts_wild_cost(self, runs):
        assert runs["wild+pulse"].keepalive_cost_usd < runs["wild"].keepalive_cost_usd

    def test_integration_cuts_icebreaker_cost(self, runs):
        assert runs["ice+pulse"].keepalive_cost_usd < runs["ice"].keepalive_cost_usd

    def test_accuracy_drop_is_small(self, runs):
        for base, integ in [("wild", "wild+pulse"), ("ice", "ice+pulse")]:
            drop = runs[base].mean_accuracy - runs[integ].mean_accuracy
            assert 0.0 <= drop < 5.0

    def test_names_propagate(self, runs):
        assert runs["wild+pulse"].policy_name == "Wild+PULSE"
