"""Tests for repro.sota.wild — Serverless in the Wild."""

import numpy as np
import pytest

from repro.baselines.openwhisk import OpenWhiskPolicy
from repro.runtime.simulator import Simulation, SimulationConfig
from repro.sota.wild import WildPolicy
from repro.traces.schema import FunctionSpec, Trace


def one_function_trace(counts, horizon=None):
    counts = np.asarray([counts], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


def bind(policy, trace, assignment, window=240):
    policy.bind(trace, assignment, window)
    return policy


class TestPredictedWindow:
    def test_learning_phase_uses_fixed_window(self, gpt):
        counts = np.zeros(50, dtype=np.int64)
        trace = one_function_trace(counts)
        p = bind(WildPolicy(min_samples=8), trace, {0: gpt})
        assert p.predicted_window(0, 0) == (1, 10)

    def test_representative_histogram_percentiles(self, gpt):
        counts = np.zeros(400, dtype=np.int64)
        trace = one_function_trace(counts)
        p = bind(WildPolicy(min_samples=5, margin=0.0), trace, {0: gpt})
        for m in range(0, 300, 20):  # constant 20-minute idle times
            p.observe_invocation(0, m, 1)
        start, end = p.predicted_window(0, 300)
        assert start == 20  # 5th percentile of a point mass
        assert end == 20

    def test_margin_widens_window(self, gpt):
        counts = np.zeros(400, dtype=np.int64)
        trace = one_function_trace(counts)
        p = bind(WildPolicy(min_samples=5, margin=0.25), trace, {0: gpt})
        for m in range(0, 300, 20):
            p.observe_invocation(0, m, 1)
        start, end = p.predicted_window(0, 300)
        assert start == 15  # floor(20 * 0.75)
        assert end == 25  # ceil(20 * 1.25)

    def test_oob_pattern_uses_forecaster(self, gpt):
        trace = one_function_trace(np.zeros(4000, dtype=np.int64))
        p = bind(
            WildPolicy(histogram_range=30, min_samples=5, oob_threshold=0.4,
                       margin=0.10),
            trace,
            {0: gpt},
        )
        t = 0
        for _ in range(20):  # idle times of 100 min, all out of range
            t += 100
            p.observe_invocation(0, t, 1)
        start, end = p.predicted_window(0, t)
        assert 80 <= start <= 100  # around the forecast 100, shrunk by margin
        assert 100 <= end <= 120

    def test_window_capped_by_schedule_capacity(self, gpt):
        trace = one_function_trace(np.zeros(4000, dtype=np.int64))
        p = bind(WildPolicy(min_samples=3), trace, {0: gpt}, window=50)
        t = 0
        for _ in range(10):
            t += 200
            p.observe_invocation(0, t, 1)
        start, end = p.predicted_window(0, t)
        assert end <= 50


class TestWildEndToEnd:
    def test_prewarm_releases_between_invocations(self, gpt):
        # Constant 30-minute timer: Wild should release the container for
        # most of the gap and pre-warm near minute 30.
        counts = np.zeros(1200, dtype=np.int64)
        counts[::30] = 1
        trace = one_function_trace(counts)
        cfg = SimulationConfig(keep_alive_window=240)
        wild = Simulation(trace, {0: gpt}, WildPolicy(min_samples=5), cfg).run()
        ow = Simulation(trace, {0: gpt}, OpenWhiskPolicy()).run()
        # Fixed 10-min policy cold-starts every invocation (gap 30 > 10);
        # Wild pre-warms and mostly avoids those cold starts.
        assert wild.n_cold < ow.n_cold
        # ... and releases idle memory, costing less than keeping 10
        # minutes alive with nothing to show for it.
        assert wild.keepalive_cost_usd < ow.keepalive_cost_usd

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            WildPolicy(head_percentile=99, tail_percentile=5)
        with pytest.raises(ValueError):
            WildPolicy(margin=1.5)
        with pytest.raises(ValueError):
            WildPolicy(histogram_range=0)
