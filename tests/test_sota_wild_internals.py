"""Focused tests for WildPolicy internals (percentile binning, state)."""

import numpy as np
import pytest

from repro.sota.wild import WildPolicy
from repro.traces.schema import FunctionSpec, Trace


def bound_policy(gpt, **kw):
    trace = Trace(
        counts=np.zeros((1, 100), dtype=np.int64),
        functions=(FunctionSpec(0, "f0"),),
    )
    p = WildPolicy(**kw)
    p.bind(trace, {0: gpt}, 240)
    return p


class TestPercentileBin:
    def test_point_mass(self, gpt):
        p = bound_policy(gpt)
        counts = np.zeros(240, dtype=np.int64)
        counts[19] = 10  # all idle times equal 20 minutes
        assert p._percentile_bin(counts, 5) == 20
        assert p._percentile_bin(counts, 99) == 20

    def test_two_modes(self, gpt):
        p = bound_policy(gpt)
        counts = np.zeros(240, dtype=np.int64)
        counts[4] = 50  # idle time 5
        counts[59] = 50  # idle time 60
        assert p._percentile_bin(counts, 5) == 5
        assert p._percentile_bin(counts, 99) == 60
        assert p._percentile_bin(counts, 50) == 5

    def test_uniform_distribution(self, gpt):
        p = bound_policy(gpt)
        counts = np.ones(100, dtype=np.int64)
        assert p._percentile_bin(counts, 50) == 50
        assert p._percentile_bin(counts, 99) == 99


class TestStateTracking:
    def test_oob_counting(self, gpt):
        p = bound_policy(gpt, histogram_range=30, min_samples=2)
        p.observe_invocation(0, 0, 1)
        p.observe_invocation(0, 10, 1)  # in range
        p.observe_invocation(0, 100, 1)  # 90 min: out of range
        s = p._state[0]
        assert s.n_in_range == 1
        assert s.n_oob == 1

    def test_same_minute_reinvocation_no_gap(self, gpt):
        p = bound_policy(gpt)
        p.observe_invocation(0, 5, 3)
        p.observe_invocation(0, 5, 2)
        assert p._state[0].n_total == 0

    def test_plan_length_matches_capacity(self, gpt):
        p = bound_policy(gpt)
        p.observe_invocation(0, 0, 1)
        plan = p.plan(0, 0)
        assert len(plan) == 240

    def test_not_an_oracle(self):
        assert WildPolicy().is_oracle is False
