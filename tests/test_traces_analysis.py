"""Tests for repro.traces.analysis."""

import numpy as np
import pytest

from repro.traces.analysis import (
    activity_summary,
    interarrival_times,
    invocation_peaks,
    window_interarrival_histogram,
)
from repro.traces.schema import FunctionSpec, Trace


def make_trace(counts):
    counts = np.asarray(counts, dtype=np.int64)
    specs = tuple(FunctionSpec(i, f"f{i}") for i in range(counts.shape[0]))
    return Trace(counts=counts, functions=specs)


class TestInterarrivalTimes:
    def test_simple_gaps(self):
        t = make_trace([[1, 0, 1, 0, 0, 1]])
        np.testing.assert_array_equal(interarrival_times(t, 0), [2, 3])

    def test_multiple_invocations_one_minute_count_once(self):
        t = make_trace([[3, 0, 2]])
        np.testing.assert_array_equal(interarrival_times(t, 0), [2])

    def test_fewer_than_two_arrivals(self):
        t = make_trace([[0, 1, 0]])
        assert interarrival_times(t, 0).size == 0


class TestWindowHistogram:
    def test_percentages_sum_to_in_window_mass(self):
        # gaps: 2, 2, 12 -> 2/3 of mass at gap 2, nothing else in window.
        counts = np.zeros((1, 20), dtype=np.int64)
        counts[0, [0, 2, 4, 16]] = 1
        t = make_trace(counts)
        h = window_interarrival_histogram(t, 0, window=10)
        assert h[1] == pytest.approx(100 * 2 / 3)
        assert h.sum() == pytest.approx(100 * 2 / 3)

    def test_empty_function(self):
        t = make_trace([[0, 0, 0]])
        assert window_interarrival_histogram(t, 0).sum() == 0

    def test_length_matches_window(self):
        t = make_trace([[1, 1, 1, 1]])
        assert len(window_interarrival_histogram(t, 0, window=7)) == 7


class TestInvocationPeaks:
    def test_finds_two_separated_peaks(self):
        counts = np.zeros((2, 200), dtype=np.int64)
        counts[:, 50] = 30
        counts[:, 150] = 25
        counts[0, ::7] += 1
        t = make_trace(counts)
        assert invocation_peaks(t, n_peaks=2) == [50, 150]

    def test_min_separation_enforced(self):
        counts = np.zeros((1, 100), dtype=np.int64)
        counts[0, 50] = 30
        counts[0, 52] = 29  # too close to the top peak
        counts[0, 90] = 20
        t = make_trace(counts)
        assert invocation_peaks(t, n_peaks=2, min_separation=20) == [50, 90]

    def test_fewer_peaks_than_requested(self):
        counts = np.zeros((1, 50), dtype=np.int64)
        counts[0, 10] = 5
        t = make_trace(counts)
        assert invocation_peaks(t, n_peaks=3) == [10]


class TestActivitySummary:
    def test_summary_rows(self, small_trace):
        rows = activity_summary(small_trace)
        assert len(rows) == small_trace.n_functions
        for row in rows:
            assert row["invocations"] >= 0
            assert 0.0 <= row["frac_gaps_in_10min"] <= 1.0
