"""Tests for repro.traces.azure — the Azure CSV loader/writer."""

import numpy as np
import pytest

from repro.traces.azure import load_azure_csv, top_functions, write_azure_csv
from repro.traces.schema import MINUTES_PER_DAY
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture()
def trace():
    return generate_trace(SyntheticTraceConfig(horizon_minutes=2 * MINUTES_PER_DAY, seed=8))


class TestRoundTrip:
    def test_write_then_load_preserves_counts(self, trace, tmp_path):
        paths = write_azure_csv(trace, tmp_path)
        assert len(paths) == 2
        loaded = load_azure_csv(paths, function_ids=[f.name for f in trace.functions])
        np.testing.assert_array_equal(loaded.counts, trace.counts)

    def test_default_ordering_is_by_volume(self, trace, tmp_path):
        paths = write_azure_csv(trace, tmp_path)
        loaded = load_azure_csv(paths)
        totals = loaded.counts.sum(axis=1)
        assert list(totals) == sorted(totals, reverse=True)

    def test_partial_day_trace(self, trace, tmp_path):
        partial = trace.window(0, 100)
        paths = write_azure_csv(partial, tmp_path, prefix="p")
        loaded = load_azure_csv(paths, function_ids=[f.name for f in partial.functions])
        assert loaded.horizon == 100
        np.testing.assert_array_equal(loaded.counts, partial.counts)


class TestLoader:
    def test_missing_function_raises(self, trace, tmp_path):
        paths = write_azure_csv(trace, tmp_path)
        with pytest.raises(KeyError, match="not present"):
            load_azure_csv(paths, function_ids=["no-such-function"])

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            load_azure_csv([])

    def test_missing_header_column(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("A,B,1,2\nx,y,1,2\n")
        with pytest.raises(ValueError, match="HashFunction"):
            load_azure_csv([bad])

    def test_single_path_accepted(self, trace, tmp_path):
        paths = write_azure_csv(trace.window(0, MINUTES_PER_DAY), tmp_path)
        loaded = load_azure_csv(paths[0])
        assert loaded.horizon == MINUTES_PER_DAY

    def test_function_absent_on_one_day_padded_with_zeros(self, tmp_path):
        day1 = tmp_path / "d1.csv"
        day2 = tmp_path / "d2.csv"
        header = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"
        day1.write_text(header + "o,a,fnA,http,1,0,2\n")
        day2.write_text(header + "o,a,fnB,http,0,1,0\n")
        loaded = load_azure_csv([day1, day2])
        assert loaded.n_functions == 2
        by_name = {f.name: f.function_id for f in loaded.functions}
        np.testing.assert_array_equal(
            loaded.counts[by_name["fnA"]], [1, 0, 2, 0, 0, 0]
        )
        np.testing.assert_array_equal(
            loaded.counts[by_name["fnB"]], [0, 0, 0, 0, 1, 0]
        )


class TestTopFunctions:
    def test_selects_most_invoked(self, trace):
        top = top_functions(trace, 3)
        assert top.n_functions == 3
        totals = sorted(
            (trace.total_invocations(f) for f in range(trace.n_functions)),
            reverse=True,
        )
        assert top.total_invocations() == sum(totals[:3])

    def test_k_larger_than_population(self, trace):
        assert top_functions(trace, 99).n_functions == trace.n_functions

    def test_k_must_be_positive(self, trace):
        with pytest.raises(ValueError):
            top_functions(trace, 0)
