"""Tests for repro.traces.azure_metadata."""

import pytest

from repro.experiments.assignments import sample_assignment
from repro.traces.azure_metadata import (
    AppMemoryRecord,
    FunctionDurationRecord,
    load_app_memory,
    load_function_durations,
    write_synthetic_metadata,
)
from repro.traces.synthetic import SyntheticTraceConfig, generate_trace


@pytest.fixture(scope="module")
def trace():
    return generate_trace(SyntheticTraceConfig(horizon_minutes=480, seed=2))


@pytest.fixture(scope="module")
def assignment(trace, zoo):
    return sample_assignment(trace.n_functions, zoo, seed=2)


@pytest.fixture()
def metadata_files(trace, assignment, tmp_path):
    return write_synthetic_metadata(trace, assignment, tmp_path)


class TestRoundTrip:
    def test_durations_load(self, trace, assignment, metadata_files):
        dur_path, _ = metadata_files
        records = load_function_durations(dur_path)
        assert len(records) == trace.n_functions
        for spec in trace.functions:
            rec = records[spec.name]
            assert rec.count == trace.total_invocations(spec.function_id)
            fam = assignment[spec.function_id]
            assert rec.average_ms == pytest.approx(
                fam.highest.warm_service_time_s * 1000.0, rel=1e-3
            )
            assert rec.minimum_ms <= rec.percentiles_ms["50"] <= rec.maximum_ms

    def test_app_memory_loads(self, trace, assignment, metadata_files):
        _, mem_path = metadata_files
        records = load_app_memory(mem_path)
        assert len(records) == trace.n_functions
        rec = records["app0000"]
        fam = assignment[0]
        assert rec.percentiles_mb["100"] == pytest.approx(
            fam.highest.memory_mb, rel=1e-3
        )
        assert rec.percentiles_mb["1"] == pytest.approx(
            fam.lowest.memory_mb, rel=1e-3
        )

    def test_percentiles_monotone(self, metadata_files):
        dur_path, mem_path = metadata_files
        for rec in load_function_durations(dur_path).values():
            vals = [rec.percentiles_ms[p] for p in ("0", "1", "25", "50", "75", "99", "100")]
            assert vals == sorted(vals)
        for rec in load_app_memory(mem_path).values():
            vals = [rec.percentiles_mb[p] for p in ("1", "5", "25", "50", "75", "95", "99", "100")]
            assert vals == sorted(vals)


class TestValidation:
    def test_wrong_schema_rejected(self, tmp_path):
        bad = tmp_path / "bad.csv"
        bad.write_text("A,B\n1,2\n")
        with pytest.raises(ValueError, match="durations"):
            load_function_durations(bad)
        with pytest.raises(ValueError, match="app-memory"):
            load_app_memory(bad)

    def test_record_invariants(self):
        with pytest.raises(ValueError):
            FunctionDurationRecord("f", 1.0, -1, 0.0, 1.0, {})
        with pytest.raises(ValueError):
            FunctionDurationRecord("f", 1.0, 1, 5.0, 1.0, {})
        with pytest.raises(ValueError):
            AppMemoryRecord("a", -1, 10.0, {})
        with pytest.raises(ValueError):
            AppMemoryRecord("a", 1, -10.0, {})
