"""Tests for repro.traces.characterize — and, through it, validation
that the synthetic generator produces the patterns each archetype claims."""

import numpy as np
import pytest

from repro.traces.characterize import (
    characterize_function,
    characterize_trace,
    classify,
)
from repro.traces.schema import FunctionSpec, Trace
from repro.traces.synthetic import (
    FunctionArchetype,
    SyntheticTraceConfig,
    generate_function,
    generate_trace,
)


def trace_of(counts_row):
    counts = np.asarray([counts_row], dtype=np.int64)
    return Trace(counts=counts, functions=(FunctionSpec(0, "f0"),))


def archetype_trace(kind, params=None, horizon=2880, seed=3):
    counts = generate_function(FunctionArchetype(kind, params or {}), horizon, seed)
    return trace_of(counts)


class TestStatistics:
    def test_exact_timer_statistics(self):
        counts = np.zeros(600, dtype=np.int64)
        counts[::5] = 1
        c = characterize_function(trace_of(counts), 0)
        assert c.periodicity > 0.9
        assert c.dominant_period == 5
        assert c.gap_cv == pytest.approx(0.0)
        assert c.window_affinity == pytest.approx(1.0)
        assert c.fano_factor < 1.0  # more regular than Poisson

    def test_poisson_fano_near_one(self):
        rng = np.random.default_rng(0)
        counts = rng.poisson(0.4, size=5000)
        c = characterize_function(trace_of(counts), 0)
        assert 0.7 < c.fano_factor < 1.3

    def test_bursty_fano_above_one(self):
        c = characterize_function(archetype_trace("bursty"), 0)
        assert c.fano_factor > 2.0

    def test_dayphase_concentration(self):
        c = characterize_function(archetype_trace("nocturnal", {"period": 6}), 0)
        assert c.dayphase_concentration > 0.95

    def test_inactive_function(self):
        c = characterize_function(trace_of(np.zeros(100, dtype=np.int64)), 0)
        assert c.n_invocations == 0
        assert c.fano_factor == 0.0
        assert classify(c) == "inactive"

    def test_characterize_trace_covers_all(self, small_trace):
        profiles = characterize_trace(small_trace)
        assert len(profiles) == small_trace.n_functions


class TestGeneratorHonesty:
    """The generator must produce what each archetype's name promises."""

    @pytest.mark.parametrize(
        "kind,params,expected",
        [
            ("periodic", {"period": 5, "jitter": 0}, "periodic"),
            ("bursty", {}, "bursty"),
            ("diurnal", {"period": 4}, "dayphase"),
            ("nocturnal", {"period": 6}, "dayphase"),
            ("sparse", {"mean_gap": 420.0}, "sparse"),
        ],
    )
    def test_archetypes_classify_as_themselves(self, kind, params, expected):
        c = characterize_function(archetype_trace(kind, params), 0)
        assert classify(c) == expected

    def test_default_mix_is_diverse(self):
        trace = generate_trace(SyntheticTraceConfig(horizon_minutes=2880, seed=9))
        labels = {classify(c) for c in characterize_trace(trace)}
        assert len(labels) >= 3  # several distinct behaviour classes

    def test_front_loaded_has_high_window_affinity(self):
        c = characterize_function(archetype_trace("front_loaded"), 0)
        assert c.window_affinity > 0.6
