"""Hardened Azure CSV ingestion: strict refusal, lenient quarantine."""

from __future__ import annotations

import json

import pytest

from repro.traces.azure import load_azure_csv
from repro.traces.schema import IngestReport, MalformedRowError

HEADER = "HashOwner,HashApp,HashFunction,Trigger,1,2,3\n"


def _csv(tmp_path, *rows, name="day01.csv"):
    path = tmp_path / name
    path.write_text(HEADER + "".join(r + "\n" for r in rows))
    return path


GOOD = "o1,a1,fn-good,http,1,0,2"

BAD_ROWS = {
    "truncated": ("o1,a1,fn-bad,http,1,0", "columns"),
    "negative": ("o1,a1,fn-bad,http,1,-2,0", "negative"),
    "fractional": ("o1,a1,fn-bad,http,1,3.7,0", "non-integral"),
    "non_numeric": ("o1,a1,fn-bad,http,1,lots,0", "non-numeric"),
    "non_finite": ("o1,a1,fn-bad,http,1,inf,0", "non-finite"),
    "no_function_id": ("o1,a1,,http,1,0,0", "empty HashFunction"),
}


class TestStrictMode:
    @pytest.mark.parametrize("row,reason", BAD_ROWS.values(),
                             ids=list(BAD_ROWS))
    def test_malformed_row_refused_with_location(self, tmp_path, row, reason):
        path = _csv(tmp_path, GOOD, row)
        with pytest.raises(MalformedRowError) as excinfo:
            load_azure_csv(path)
        issue = excinfo.value.issue
        assert issue.line == 3  # header is line 1, GOOD is line 2
        assert issue.file == str(path)
        assert reason in issue.reason
        assert str(path) in str(excinfo.value)

    def test_empty_cells_are_zero(self, tmp_path):
        trace = load_azure_csv(_csv(tmp_path, "o1,a1,fn,http,1,,2"))
        assert trace.counts.tolist() == [[1, 0, 2]]

    def test_duplicate_function_rows_summed(self, tmp_path):
        trace = load_azure_csv(
            _csv(tmp_path, "o1,a1,fn,http,1,0,2", "o1,a1,fn,http,0,4,0")
        )
        assert trace.counts.tolist() == [[1, 4, 2]]


class TestLenientMode:
    def test_bad_rows_quarantined_good_rows_loaded(self, tmp_path):
        path = _csv(tmp_path, GOOD, *(row for row, _ in BAD_ROWS.values()))
        report = IngestReport()
        trace = load_azure_csv(path, mode="lenient", report=report)
        assert [f.name for f in trace.functions] == ["fn-good"]
        assert report.n_rows == 1 + len(BAD_ROWS)
        assert report.n_ok == 1
        assert report.n_quarantined == len(BAD_ROWS)
        assert report.quarantine_path is None  # no sidecar requested

    def test_quarantine_sidecar_records_reasons(self, tmp_path):
        path = _csv(tmp_path, GOOD, BAD_ROWS["negative"][0],
                    BAD_ROWS["fractional"][0])
        sidecar = tmp_path / "quarantine.jsonl"
        report = IngestReport()
        load_azure_csv(path, mode="lenient", quarantine_path=sidecar,
                       report=report)
        lines = [json.loads(l) for l in sidecar.read_text().splitlines()]
        assert [e["line"] for e in lines] == [3, 4]
        assert "negative" in lines[0]["reason"]
        assert "non-integral" in lines[1]["reason"]
        assert all(e["file"] == str(path) for e in lines)
        assert report.quarantine_path == str(sidecar)

    def test_clean_file_writes_no_sidecar(self, tmp_path):
        sidecar = tmp_path / "quarantine.jsonl"
        load_azure_csv(_csv(tmp_path, GOOD), mode="lenient",
                       quarantine_path=sidecar)
        assert not sidecar.exists()

    def test_report_as_dict_is_manifest_ready(self, tmp_path):
        path = _csv(tmp_path, GOOD, BAD_ROWS["negative"][0])
        report = IngestReport()
        load_azure_csv(path, mode="lenient", report=report)
        d = report.as_dict()
        assert d["mode"] == "lenient"
        assert d["n_rows"] == 2
        assert d["n_ok"] == 1
        assert d["n_quarantined"] == 1


class TestModeValidation:
    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            load_azure_csv(_csv(tmp_path, GOOD), mode="permissive")
