"""Tests for repro.traces.schema."""

import numpy as np
import pytest

from repro.traces.schema import MINUTES_PER_DAY, FunctionSpec, Trace


def make_trace(counts):
    counts = np.asarray(counts)
    specs = tuple(
        FunctionSpec(function_id=i, name=f"f{i}") for i in range(counts.shape[0])
    )
    return Trace(counts=counts, functions=specs)


class TestTraceConstruction:
    def test_basic_shape(self):
        t = make_trace([[0, 1, 2], [3, 0, 0]])
        assert t.n_functions == 2
        assert t.horizon == 3
        assert t.total_invocations() == 6

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_trace([[0, -1]])

    def test_rejects_non_integral(self):
        with pytest.raises(ValueError, match="integral"):
            make_trace([[0.5, 1.0]])

    def test_accepts_integral_floats(self):
        t = make_trace(np.array([[1.0, 2.0]]))
        assert t.counts.dtype.kind == "i"

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            make_trace([1, 2, 3])

    def test_rejects_mismatched_specs(self):
        with pytest.raises(ValueError):
            Trace(
                counts=np.zeros((2, 5), dtype=np.int64),
                functions=(FunctionSpec(0, "only"),),
            )

    def test_rejects_out_of_order_ids(self):
        with pytest.raises(ValueError, match="function_ids"):
            Trace(
                counts=np.zeros((2, 5), dtype=np.int64),
                functions=(FunctionSpec(1, "a"), FunctionSpec(0, "b")),
            )


class TestTraceAccess:
    def test_invocation_minutes(self):
        t = make_trace([[0, 2, 0, 1]])
        np.testing.assert_array_equal(t.invocation_minutes(0), [1, 3])

    def test_invocation_minutes_cached(self):
        t = make_trace([[1, 0, 1]])
        assert t.invocation_minutes(0) is t.invocation_minutes(0)

    def test_total_per_minute(self):
        t = make_trace([[1, 0], [2, 3]])
        np.testing.assert_array_equal(t.total_per_minute(), [3, 3])

    def test_per_function_totals(self):
        t = make_trace([[1, 0], [2, 3]])
        assert t.total_invocations(0) == 1
        assert t.total_invocations(1) == 5

    def test_bad_fid(self):
        t = make_trace([[1]])
        with pytest.raises(IndexError):
            t.counts_for(1)


class TestTraceSlicing:
    def test_window(self):
        t = make_trace([[1, 2, 3, 4]])
        w = t.window(1, 3)
        np.testing.assert_array_equal(w.counts, [[2, 3]])
        assert w.horizon == 2

    def test_window_bounds(self):
        t = make_trace([[1, 2]])
        with pytest.raises(ValueError):
            t.window(1, 5)
        with pytest.raises(ValueError):
            t.window(2, 2)

    def test_days(self):
        counts = np.zeros((1, 3 * MINUTES_PER_DAY), dtype=np.int64)
        counts[0, MINUTES_PER_DAY] = 7  # first minute of day 2
        t = make_trace(counts)
        day2 = t.days(1, 1)
        assert day2.horizon == MINUTES_PER_DAY
        assert day2.counts[0, 0] == 7

    def test_select_functions_reindexes(self):
        t = make_trace([[1, 0], [0, 2], [3, 3]])
        sub = t.select_functions([2, 0])
        assert sub.n_functions == 2
        assert [f.function_id for f in sub.functions] == [0, 1]
        assert sub.functions[0].name == "f2"
        np.testing.assert_array_equal(sub.counts[0], [3, 3])

    def test_n_days(self):
        t = make_trace(np.zeros((1, MINUTES_PER_DAY * 2), dtype=np.int64))
        assert t.n_days == 2.0


class TestFunctionSpec:
    def test_rejects_negative_id(self):
        with pytest.raises(ValueError):
            FunctionSpec(-1, "x")

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            FunctionSpec(0, "")
