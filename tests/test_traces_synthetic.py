"""Tests for repro.traces.synthetic — the calibrated trace generator."""

import numpy as np
import pytest

from repro.traces.analysis import (
    interarrival_times,
    invocation_peaks,
    window_interarrival_histogram,
)
from repro.traces.schema import MINUTES_PER_DAY
from repro.traces.synthetic import (
    ARCHETYPES,
    DEFAULT_FUNCTION_MIX,
    FunctionArchetype,
    SyntheticTraceConfig,
    generate_function,
    generate_trace,
)


class TestArchetypes:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown archetype"):
            FunctionArchetype("fractal")

    def test_registry_exposes_all_kinds(self):
        assert "periodic" in ARCHETYPES and "bursty" in ARCHETYPES

    @pytest.mark.parametrize("kind", ARCHETYPES)
    def test_every_archetype_generates(self, kind):
        counts = generate_function(FunctionArchetype(kind), 2000, seed=3)
        assert counts.shape == (2000,)
        assert counts.min() >= 0
        assert counts.sum() > 0

    def test_exact_periodic_gaps(self):
        counts = generate_function(
            FunctionArchetype("periodic", {"period": 5, "jitter": 0}), 500, seed=0
        )
        gaps = np.diff(np.flatnonzero(counts))
        assert set(gaps.tolist()) == {5}

    def test_dayphase_respects_active_window(self):
        counts = generate_function(
            FunctionArchetype("diurnal", {"period": 4}), 2 * MINUTES_PER_DAY, seed=1
        )
        minute_of_day = np.arange(len(counts)) % MINUTES_PER_DAY
        night = (minute_of_day < 8 * 60) | (minute_of_day >= 20 * 60)
        assert counts[night].sum() == 0
        assert counts[~night].sum() > 0

    def test_nocturnal_wraps_midnight(self):
        counts = generate_function(
            FunctionArchetype("nocturnal", {"period": 6}), 2 * MINUTES_PER_DAY, seed=1
        )
        minute_of_day = np.arange(len(counts)) % MINUTES_PER_DAY
        day = (minute_of_day >= 6 * 60) & (minute_of_day < 22 * 60)
        assert counts[day].sum() == 0
        assert counts.sum() > 0

    def test_drifting_changes_regime(self):
        counts = generate_function(FunctionArchetype("drifting"), 3000, seed=2)
        thirds = np.array_split(counts, 3)
        g1 = np.diff(np.flatnonzero(thirds[0]))
        g2 = np.diff(np.flatnonzero(thirds[1]))
        assert np.median(g1) != np.median(g2)

    def test_deterministic_given_seed(self):
        a = generate_function(FunctionArchetype("bursty"), 1000, seed=11)
        b = generate_function(FunctionArchetype("bursty"), 1000, seed=11)
        np.testing.assert_array_equal(a, b)


class TestSyntheticTraceConfig:
    def test_defaults_are_paper_scale(self):
        cfg = SyntheticTraceConfig()
        assert cfg.horizon_minutes == 14 * MINUTES_PER_DAY
        assert len(cfg.functions) == 12

    def test_with_horizon(self):
        cfg = SyntheticTraceConfig().with_horizon(100)
        assert cfg.horizon_minutes == 100
        assert cfg.functions == DEFAULT_FUNCTION_MIX

    def test_rejects_peak_outside_horizon(self):
        cfg = SyntheticTraceConfig(horizon_minutes=100, peak_minutes=(500,))
        with pytest.raises(ValueError, match="outside horizon"):
            generate_trace(cfg)

    def test_rejects_bad_participation(self):
        with pytest.raises(ValueError):
            SyntheticTraceConfig(peak_participation=1.5)


class TestGenerateTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(SyntheticTraceConfig(horizon_minutes=2880, seed=5))

    def test_shape_and_metadata(self, trace):
        assert trace.n_functions == 12
        assert trace.horizon == 2880
        assert trace.functions[0].archetype == DEFAULT_FUNCTION_MIX[0].kind

    def test_every_function_active(self, trace):
        for fid in range(trace.n_functions):
            assert trace.total_invocations(fid) > 0

    def test_peaks_are_prominent(self, trace):
        # The two designated peaks must dwarf the typical minute.
        totals = trace.total_per_minute()
        peaks = invocation_peaks(trace, n_peaks=2)
        typical = np.median(totals[totals > 0])
        for p in peaks:
            assert totals[p] > 5 * typical

    def test_interarrival_shapes_differ_across_functions(self, trace):
        # Figure 1's premise: the window histograms are diverse.
        h_front = window_interarrival_histogram(trace, 7)  # front_loaded
        h_late = window_interarrival_histogram(trace, 8)  # late_rebound
        assert np.argmax(h_front) < np.argmax(h_late)

    def test_reproducible(self):
        cfg = SyntheticTraceConfig(horizon_minutes=600, seed=9)
        np.testing.assert_array_equal(
            generate_trace(cfg).counts, generate_trace(cfg).counts
        )

    def test_different_seeds_differ(self):
        a = generate_trace(SyntheticTraceConfig(horizon_minutes=600, seed=1))
        b = generate_trace(SyntheticTraceConfig(horizon_minutes=600, seed=2))
        assert not np.array_equal(a.counts, b.counts)

    def test_explicit_peak_minutes_respected(self):
        cfg = SyntheticTraceConfig(
            horizon_minutes=600,
            peak_minutes=(300,),
            peak_participation=1.0,
            peak_intensity=10.0,
            seed=3,
        )
        t = generate_trace(cfg)
        totals = t.total_per_minute()
        assert totals[300] >= totals.mean() * 3

    def test_no_peaks_option(self):
        cfg = SyntheticTraceConfig(horizon_minutes=600, n_peaks=0, seed=3)
        t = generate_trace(cfg)  # should not raise
        assert t.horizon == 600
