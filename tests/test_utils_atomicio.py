"""Atomic artifact writes: all-or-nothing, never torn."""

from __future__ import annotations

import json
import os

import pytest

from repro.utils.atomicio import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
    sha256_bytes,
    sha256_file,
)


class TestAtomicWriter:
    def test_writes_and_replaces(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write_text(path, "one")
        atomic_write_text(path, "two")
        assert path.read_text() == "two"

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "er" / "a.txt"
        atomic_write_text(path, "x")
        assert path.read_text() == "x"

    def test_failure_leaves_previous_content(self, tmp_path):
        path = tmp_path / "a.txt"
        atomic_write_text(path, "intact")
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as fh:
                fh.write("torn torn torn")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "intact"

    def test_failure_leaves_no_temp_droppings(self, tmp_path):
        path = tmp_path / "a.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path) as fh:
                fh.write("x")
                raise RuntimeError("boom")
        assert os.listdir(tmp_path) == []

    def test_read_modes_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="mode"):
            with atomic_writer(tmp_path / "a.txt", "r"):
                pass

    def test_binary_mode(self, tmp_path):
        path = tmp_path / "a.bin"
        atomic_write_bytes(path, b"\x00\x01\x02")
        assert path.read_bytes() == b"\x00\x01\x02"


class TestCanonicalJson:
    def test_identical_payloads_are_byte_identical(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        atomic_write_json(a, {"z": 1, "a": [2, 3]})
        atomic_write_json(b, {"a": [2, 3], "z": 1})  # insertion order differs
        assert a.read_bytes() == b.read_bytes()

    def test_round_trips(self, tmp_path):
        path = tmp_path / "a.json"
        payload = {"runs": {"pulse/000": {"status": "done"}}, "n": 3}
        atomic_write_json(path, payload)
        assert json.loads(path.read_text()) == payload

    def test_trailing_newline(self, tmp_path):
        path = atomic_write_json(tmp_path / "a.json", {})
        assert path.read_text().endswith("\n")


class TestHashes:
    def test_sha256_file_matches_bytes(self, tmp_path):
        path = tmp_path / "a.bin"
        data = os.urandom(3 << 10)
        atomic_write_bytes(path, data)
        assert sha256_file(path) == sha256_bytes(data)
