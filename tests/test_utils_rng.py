"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import rng_from_seed, spawn_rng


class TestRngFromSeed:
    def test_int_seed_deterministic(self):
        a = rng_from_seed(7).random(5)
        b = rng_from_seed(7).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        assert rng_from_seed(1).random() != rng_from_seed(2).random()

    def test_none_is_deterministic(self):
        assert rng_from_seed(None).random() == rng_from_seed(None).random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert rng_from_seed(g) is g


class TestSpawnRng:
    def test_children_independent_of_call_order(self):
        parent = rng_from_seed(11)
        c2_first = spawn_rng(parent, 2).random(4)
        parent2 = rng_from_seed(11)
        spawn_rng(parent2, 0)  # spawn others first
        spawn_rng(parent2, 1)
        c2_second = spawn_rng(parent2, 2).random(4)
        np.testing.assert_array_equal(c2_first, c2_second)

    def test_children_distinct(self):
        parent = rng_from_seed(11)
        a = spawn_rng(parent, 0).random(8)
        b = spawn_rng(parent, 1).random(8)
        assert not np.array_equal(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_rng(rng_from_seed(0), -1)
