"""Shared CLI spec parsing: shapes, errors, error messages."""

from __future__ import annotations

import pytest

from repro.utils.specs import (
    SpecError,
    parse_fid_minute,
    parse_float_list,
    parse_kv_spec,
)


class TestParseFidMinute:
    def test_ok(self):
        assert parse_fid_minute("3:120", "--cold") == (3, 120)

    def test_missing_colon(self):
        with pytest.raises(SpecError, match="missing ':'"):
            parse_fid_minute("3120", "--cold")

    def test_non_integer_parts(self):
        with pytest.raises(SpecError, match="--plan"):
            parse_fid_minute("a:b", "--plan")

    def test_is_catchable_and_exits(self):
        # SystemExit subclass: the CLI exits, libraries can catch it.
        with pytest.raises(SystemExit):
            parse_fid_minute("nope", "--cold")


class TestParseFloatList:
    def test_ok(self):
        assert parse_float_list("0, 0.05 ,0.1", "--rates") == [0.0, 0.05, 0.1]

    def test_bad_token_named_in_error(self):
        with pytest.raises(SpecError, match="'x'"):
            parse_float_list("0,x", "--rates")

    def test_empty_rejected(self):
        with pytest.raises(SpecError, match="at least one"):
            parse_float_list(",,", "--rates")


FIELDS = {
    "spawn": ("spawn_failure_rate", float),
    "retries": ("max_spawn_retries", int),
}


class TestParseKvSpec:
    def test_maps_spec_keys_to_attributes(self):
        out = parse_kv_spec("spawn=0.1, retries=3", "--faults", FIELDS)
        assert out == {"spawn_failure_rate": 0.1, "max_spawn_retries": 3}

    def test_empty_spec_is_empty_dict(self):
        assert parse_kv_spec("", "--faults", FIELDS) == {}

    def test_unknown_key_lists_known(self):
        with pytest.raises(SpecError, match="retries"):
            parse_kv_spec("spwan=0.1", "--faults", FIELDS)

    def test_missing_equals(self):
        with pytest.raises(SpecError, match="KEY=VALUE"):
            parse_kv_spec("spawn", "--faults", FIELDS)

    def test_uncastable_value_names_type(self):
        with pytest.raises(SpecError, match="int"):
            parse_kv_spec("retries=many", "--faults", FIELDS)
