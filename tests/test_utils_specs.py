"""Shared CLI spec parsing: shapes, errors, error messages."""

from __future__ import annotations

import pytest

from pathlib import Path

from repro.utils.specs import (
    SpecError,
    parse_choice_list,
    parse_fid_minute,
    parse_float_list,
    parse_kv_spec,
    parse_optional_int,
    parse_scoped_fid_minute,
    resolve_paths,
)


class TestParseFidMinute:
    def test_ok(self):
        assert parse_fid_minute("3:120", "--cold") == (3, 120)

    def test_missing_colon(self):
        with pytest.raises(SpecError, match="missing ':'"):
            parse_fid_minute("3120", "--cold")

    def test_non_integer_parts(self):
        with pytest.raises(SpecError, match="--plan"):
            parse_fid_minute("a:b", "--plan")

    def test_is_catchable_and_exits(self):
        # SystemExit subclass: the CLI exits, libraries can catch it.
        with pytest.raises(SystemExit):
            parse_fid_minute("nope", "--cold")


class TestParseFloatList:
    def test_ok(self):
        assert parse_float_list("0, 0.05 ,0.1", "--rates") == [0.0, 0.05, 0.1]

    def test_bad_token_named_in_error(self):
        with pytest.raises(SpecError, match="'x'"):
            parse_float_list("0,x", "--rates")

    def test_empty_rejected(self):
        with pytest.raises(SpecError, match="at least one"):
            parse_float_list(",,", "--rates")


FIELDS = {
    "spawn": ("spawn_failure_rate", float),
    "retries": ("max_spawn_retries", int),
}


class TestParseKvSpec:
    def test_maps_spec_keys_to_attributes(self):
        out = parse_kv_spec("spawn=0.1, retries=3", "--faults", FIELDS)
        assert out == {"spawn_failure_rate": 0.1, "max_spawn_retries": 3}

    def test_empty_spec_is_empty_dict(self):
        assert parse_kv_spec("", "--faults", FIELDS) == {}

    def test_unknown_key_lists_known(self):
        with pytest.raises(SpecError, match="retries"):
            parse_kv_spec("spwan=0.1", "--faults", FIELDS)

    def test_missing_equals(self):
        with pytest.raises(SpecError, match="KEY=VALUE"):
            parse_kv_spec("spawn", "--faults", FIELDS)

    def test_uncastable_value_names_type(self):
        with pytest.raises(SpecError, match="int"):
            parse_kv_spec("retries=many", "--faults", FIELDS)


class TestParseScopedFidMinute:
    def test_empty_means_unscoped(self):
        assert parse_scoped_fid_minute("", "--downgrades") == (None, None)
        assert parse_scoped_fid_minute("  ", "--downgrades") == (None, None)

    def test_bare_fid(self):
        assert parse_scoped_fid_minute("3", "--downgrades") == (3, None)

    def test_full_coordinate(self):
        assert parse_scoped_fid_minute("3:120", "--downgrades") == (3, 120)

    def test_non_integer_fid(self):
        with pytest.raises(SpecError, match="FID or FID:MINUTE"):
            parse_scoped_fid_minute("abc", "--downgrades")

    def test_bad_coordinate_delegates_to_fid_minute(self):
        with pytest.raises(SpecError, match="integer parts"):
            parse_scoped_fid_minute("3:x", "--downgrades")


class TestParseOptionalInt:
    def test_empty_means_unscoped(self):
        assert parse_optional_int("", "--faults") is None

    def test_integer(self):
        assert parse_optional_int(" 7 ", "--faults") == 7

    def test_non_integer(self):
        with pytest.raises(SpecError, match="--faults"):
            parse_optional_int("7.5", "--faults")


class TestParseChoiceList:
    CHOICES = ("RPR001", "RPR002", "RPR005")

    def test_repeated_and_comma_separated(self):
        out = parse_choice_list(
            ["RPR005", "rpr001,RPR002"], "--rule", self.CHOICES
        )
        assert out == ["RPR005", "RPR001", "RPR002"]

    def test_case_insensitive_and_deduped(self):
        out = parse_choice_list(["rpr001", "RPR001"], "--rule", self.CHOICES)
        assert out == ["RPR001"]

    def test_unknown_choice_lists_known(self):
        with pytest.raises(SpecError, match="RPR002"):
            parse_choice_list(["RPR999"], "--rule", self.CHOICES)

    def test_empty_rejected(self):
        with pytest.raises(SpecError, match="at least one"):
            parse_choice_list([",,"], "--rule", self.CHOICES)


class TestResolvePaths:
    def test_existing_paths_kept_in_order(self, tmp_path):
        a = tmp_path / "a"
        b = tmp_path / "b"
        a.mkdir()
        b.touch()
        out = resolve_paths([str(b), str(a)], "repro lint")
        assert out == [b, a]
        assert all(isinstance(p, Path) for p in out)

    def test_empty_falls_back_to_default(self, tmp_path):
        assert resolve_paths([], "repro lint", default=tmp_path) == [tmp_path]

    def test_empty_without_default_rejected(self):
        with pytest.raises(SpecError, match="at least one path"):
            resolve_paths([], "repro lint")

    def test_nonexistent_path_named_in_error(self, tmp_path):
        with pytest.raises(SpecError, match="does not exist"):
            resolve_paths([str(tmp_path / "ghost")], "repro lint")
