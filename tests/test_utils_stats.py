"""Tests for repro.utils.stats."""

import numpy as np
import pytest

from repro.utils.stats import SummaryStats, ascii_histogram, summarize


class TestSummarize:
    def test_basic(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.ci_low < s.mean < s.ci_high

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0
        assert s.ci_low == s.ci_high == 5.0

    def test_ci_tightens_with_samples(self):
        rng = np.random.default_rng(0)
        small = summarize(rng.normal(0, 1, 10))
        large = summarize(rng.normal(0, 1, 1000))
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_ci_coverage_approximate(self):
        # ~95% of 95% CIs over repeated samples should cover the truth.
        rng = np.random.default_rng(1)
        covered = 0
        trials = 200
        for _ in range(trials):
            s = summarize(rng.normal(10.0, 2.0, 30))
            if s.ci_low <= 10.0 <= s.ci_high:
                covered += 1
        assert covered / trials > 0.85

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            summarize([1.0, 2.0], confidence=1.0)

    def test_str_format(self):
        assert "95% CI" in str(summarize([1.0, 2.0, 3.0]))


class TestAsciiHistogram:
    def test_rows_and_counts(self):
        out = ascii_histogram([1, 1, 1, 2, 9], bins=4)
        lines = out.splitlines()
        assert len(lines) == 4
        assert "#" in lines[0]

    def test_constant_values(self):
        out = ascii_histogram([3.0, 3.0], bins=5)
        assert "(2)" in out

    def test_log_bins(self):
        out = ascii_histogram([1e-5, 1e-4, 1e-3], bins=3, log_bins=True)
        assert len(out.splitlines()) == 3

    def test_log_bins_reject_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_histogram([0.0, 1.0], log_bins=True)

    def test_empty(self):
        assert ascii_histogram([]) == "(no samples)"
