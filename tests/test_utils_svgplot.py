"""Tests for the dependency-free SVG plot writer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.utils.svgplot import bar_chart, line_chart, save, scatter_chart


def parse(svg: str) -> ET.Element:
    """Well-formedness check: every chart must be valid XML."""
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_svg_with_polyline_per_series(self):
        svg = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, title="t")
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f".//{ns}polyline")) == 2

    def test_title_and_labels_present(self):
        svg = line_chart({"s": [0, 1]}, title="My Title", xlabel="X", ylabel="Y")
        assert "My Title" in svg and ">X<" in svg and ">Y<" in svg

    def test_long_series_downsampled(self):
        svg = line_chart({"s": np.arange(100_000)}, max_points=100)
        pts = svg.split('points="')[1].split('"')[0]
        assert len(pts.split()) == 100

    def test_constant_series_safe(self):
        parse(line_chart({"s": [5.0, 5.0, 5.0]}))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_escapes_markup_in_labels(self):
        svg = line_chart({"<s>": [1, 2]}, title="a < b & c")
        parse(svg)  # would fail if unescaped
        assert "&lt;s&gt;" in svg


class TestBarChart:
    def test_bar_per_value(self):
        svg = bar_chart({"cost": 39.5, "svc": 8.8, "acc": -0.6})
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        # one background rect + 3 bars + legend-free
        rects = root.findall(f".//{ns}rect")
        assert len(rects) == 4

    def test_negative_values_render(self):
        svg = bar_chart({"down": -5.0})
        parse(svg)
        assert "-5.0" in svg

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})


class TestScatterChart:
    def test_circle_per_point(self):
        svg = scatter_chart({"a": (1.0, 2.0), "b": (3.0, 4.0)})
        root = parse(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f".//{ns}circle")) == 2

    def test_single_point_safe(self):
        parse(scatter_chart({"only": (1.0, 1.0)}))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            scatter_chart({})


class TestSave:
    def test_writes_file_and_creates_dirs(self, tmp_path):
        svg = bar_chart({"x": 1.0})
        out = save(svg, tmp_path / "nested" / "chart.svg")
        assert out.exists()
        assert out.read_text() == svg


class TestRenderAll:
    def test_full_figure_set(self, tmp_path):
        from repro.experiments.figures import render_all
        from repro.experiments.runner import ExperimentConfig

        cfg = ExperimentConfig(n_runs=1, horizon_minutes=480, seed=23)
        paths = render_all(tmp_path, cfg)
        names = {p.name for p in paths}
        assert {
            "fig1_interarrival_histograms.svg",
            "fig2_interarrival_drift.svg",
            "fig4_individual_memory.svg",
            "fig5_tradeoff.svg",
            "fig6a_improvements.svg",
            "fig6b_cost_error.svg",
            "fig7_pulse_memory.svg",
            "fig11_memory_thresholds.svg",
        } == names
        for p in paths:
            parse(p.read_text())  # all well-formed
