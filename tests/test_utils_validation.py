"""Tests for repro.utils.validation."""

import pytest

from repro.utils.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
    check_positive_int,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive("x", 0.5) == 0.5

    @pytest.mark.parametrize("bad", [0, -1, -0.001])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError, match="x must be positive"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative("x", 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_non_negative("x", -1e-9)


class TestCheckPositiveInt:
    def test_accepts_int(self):
        assert check_positive_int("n", 3) == 3

    @pytest.mark.parametrize("bad", [0, -2])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValueError):
            check_positive_int("n", bad)

    @pytest.mark.parametrize("bad", [1.5, "3", True])
    def test_rejects_non_int_types(self, bad):
        with pytest.raises(ValueError):
            check_positive_int("n", bad)


class TestCheckFraction:
    @pytest.mark.parametrize("ok", [0.0, 0.5, 1.0])
    def test_inclusive_bounds(self, ok):
        assert check_fraction("f", ok) == ok

    @pytest.mark.parametrize("bad", [-0.01, 1.01])
    def test_out_of_range(self, bad):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_fraction("f", bad)

    def test_exclusive_rejects_bounds(self):
        with pytest.raises(ValueError):
            check_fraction("f", 0.0, inclusive=False)
        with pytest.raises(ValueError):
            check_fraction("f", 1.0, inclusive=False)
        assert check_fraction("f", 0.5, inclusive=False) == 0.5
